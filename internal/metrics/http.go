package metrics

import (
	"net"
	"net/http"
	"strings"
)

// Handler returns an expvar-style HTTP handler serving snapshots of r:
// Prometheus text exposition by default, JSON with ?format=json or an
// Accept: application/json header. A nil registry serves empty
// snapshots, so wiring the handler unconditionally is safe.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = s.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.WritePrometheus(w)
	})
}

// Serve starts an HTTP server on addr exposing Handler(r) at /metrics
// (and at /, for curl convenience). It returns the bound address (useful
// with a ":0" addr) and a shutdown func. The server runs until shutdown
// is called; serve errors after shutdown are discarded.
func Serve(addr string, r *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	h := Handler(r)
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

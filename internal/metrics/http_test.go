package metrics

import (
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestShutdownWaitsForInFlightRequest drives the graceful-shutdown
// contract: a request already being served when shutdown starts must
// run to completion and deliver its full response, while the listener
// stops accepting new work. The old implementation called srv.Close(),
// which severed in-flight scrape connections mid-body.
func TestShutdownWaitsForInFlightRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := serveWith(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		_, _ = io.WriteString(w, "slow-scrape-body")
	}))

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	<-entered
	// Shutdown with the scrape still blocked inside the handler; it must
	// not return until the handler finishes (released below).
	var wg sync.WaitGroup
	wg.Add(1)
	shutdownDone := make(chan struct{})
	go func() {
		defer wg.Done()
		shutdownServer(srv)
		close(shutdownDone)
	}()
	select {
	case <-shutdownDone:
		t.Fatal("shutdown returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	wg.Wait()

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", r.err)
	}
	if r.body != "slow-scrape-body" {
		t.Fatalf("in-flight response body = %q, want full body", r.body)
	}
}

// TestServeRejectsAfterShutdown checks the other half of the contract:
// once shutdown returns, the bound address no longer accepts scrapes.
func TestServeRejectsAfterShutdown(t *testing.T) {
	r := NewRegistry()
	bound, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	shutdown()
	c := &http.Client{Timeout: time.Second}
	if resp, err := c.Get("http://" + bound + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatal("scrape succeeded after shutdown")
	}
}

func TestHistSnapQuantile(t *testing.T) {
	h := HistSnap{
		Bounds: []uint64{10, 100, 1000},
		Counts: []uint64{5, 3, 1, 1}, // last entry is +Inf
		Count:  10,
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.50, 10},   // 5th of 10 observations is in the <=10 bucket
		{0.80, 100},  // 8th lands in the <=100 bucket
		{0.90, 1000}, // 9th in <=1000
		{0.99, 1000}, // +Inf bucket floors to the largest finite bound
		{1.00, 1000},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := (HistSnap{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// sorted by (name, label key, numeric-aware label value) so renderings
// are deterministic and diffable. Counter values and histogram bucket
// counts are loaded atomically and individually: successive snapshots
// of a live registry are monotonic per instrument, and a histogram's
// Count is computed from the very bucket loads that produced Counts, so
// Count == sum(Counts) always holds within one snapshot.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
}

// CounterSnap is one counter's value.
type CounterSnap struct {
	Name     string `json:"name"`
	LabelKey string `json:"label_key,omitempty"`
	LabelVal string `json:"label_val,omitempty"`
	Value    uint64 `json:"value"`
}

// GaugeSnap is one gauge's value.
type GaugeSnap struct {
	Name     string `json:"name"`
	LabelKey string `json:"label_key,omitempty"`
	LabelVal string `json:"label_val,omitempty"`
	Value    int64  `json:"value"`
}

// HistSnap is one histogram's buckets. Counts has len(Bounds)+1
// entries; the last is the +Inf bucket. Counts are per-bucket (not
// cumulative); WritePrometheus cumulates them for the exposition
// format.
type HistSnap struct {
	Name     string   `json:"name"`
	LabelKey string   `json:"label_key,omitempty"`
	LabelVal string   `json:"label_val,omitempty"`
	Bounds   []uint64 `json:"bounds"`
	Counts   []uint64 `json:"counts"`
	Sum      uint64   `json:"sum"`
	Count    uint64   `json:"count"`
	// Exemplars link buckets to request traces (ObserveExemplar);
	// empty for histograms fed by plain Observe.
	Exemplars []ExemplarSnap `json:"exemplars,omitempty"`
}

// ExemplarSnap is one bucket's most recent traced observation.
type ExemplarSnap struct {
	Bucket  int    `json:"bucket"` // index into Counts
	Value   uint64 `json:"value"`
	TraceID uint64 `json:"trace_id"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observations
// behind one histogram snapshot: the upper bound of the bucket holding
// the q-th observation, or the largest finite bound when it lands in
// the +Inf bucket. With no observations it returns 0. The estimate's
// resolution is the bucket layout's — the usual histogram_quantile
// trade-off — which is exactly what serving SLO summaries (p50/p99 of
// a latency histogram) need.
func (h HistSnap) Quantile(q float64) uint64 {
	if h.Count == 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	// The rank fell in the +Inf bucket (or the layout had no finite
	// bounds): report the largest finite bound as a floor estimate.
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}

// Snapshot captures the current value of every instrument. Safe for
// concurrent use with updaters; returns an empty snapshot on a nil
// registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	cids := make([]instrumentID, 0, len(r.counters))
	for id := range r.counters {
		cids = append(cids, id)
	}
	gids := make([]instrumentID, 0, len(r.gauges))
	for id := range r.gauges {
		gids = append(gids, id)
	}
	hids := make([]instrumentID, 0, len(r.hists))
	for id := range r.hists {
		hids = append(hids, id)
	}
	cs := make([]*Counter, len(cids))
	for i, id := range cids {
		cs[i] = r.counters[id]
	}
	gs := make([]*Gauge, len(gids))
	for i, id := range gids {
		gs[i] = r.gauges[id]
	}
	hs := make([]*Histogram, len(hids))
	for i, id := range hids {
		hs[i] = r.hists[id]
	}
	r.mu.Unlock()

	// Values are loaded outside the registry lock: instruments are
	// immutable once created, only their atomics move.
	perm := make([]int, len(cids))
	for i := range perm {
		perm[i] = i
	}
	sortByID(cids, perm)
	s.Counters = make([]CounterSnap, len(cids))
	for i, id := range cids {
		s.Counters[i] = CounterSnap{id.name, id.labelKey, id.labelVal, cs[perm[i]].Value()}
	}

	perm = perm[:0]
	for i := range gids {
		perm = append(perm, i)
	}
	sortByID(gids, perm)
	s.Gauges = make([]GaugeSnap, len(gids))
	for i, id := range gids {
		s.Gauges[i] = GaugeSnap{id.name, id.labelKey, id.labelVal, gs[perm[i]].Value()}
	}

	perm = perm[:0]
	for i := range hids {
		perm = append(perm, i)
	}
	sortByID(hids, perm)
	s.Histograms = make([]HistSnap, len(hids))
	for i, id := range hids {
		h := hs[perm[i]]
		counts := make([]uint64, len(h.counts))
		var total uint64
		for j := range h.counts {
			counts[j] = h.counts[j].Load()
			total += counts[j]
		}
		hs := HistSnap{
			Name:     id.name,
			LabelKey: id.labelKey,
			LabelVal: id.labelVal,
			Bounds:   h.bounds,
			Counts:   counts,
			Sum:      h.sum.Load(),
			Count:    total,
		}
		for j := range h.exID {
			if tid := h.exID[j].Load(); tid != 0 {
				hs.Exemplars = append(hs.Exemplars, ExemplarSnap{
					Bucket: j, Value: h.exVal[j].Load(), TraceID: tid,
				})
			}
		}
		s.Histograms[i] = hs
	}
	return s
}

// sortByID sorts ids in place and applies the same permutation order to
// perm (which must start as the identity), so callers can reorder a
// parallel slice.
func sortByID(ids []instrumentID, perm []int) {
	sort.Sort(&idSorter{ids, perm})
}

type idSorter struct {
	ids  []instrumentID
	perm []int
}

func (s *idSorter) Len() int { return len(s.ids) }
func (s *idSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
}
func (s *idSorter) Less(i, j int) bool { return lessID(s.ids[i], s.ids[j]) }

func lessID(a, b instrumentID) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	if a.labelKey != b.labelKey {
		return a.labelKey < b.labelKey
	}
	ai, aok := atoi(a.labelVal)
	bi, bok := atoi(b.labelVal)
	if aok && bok {
		return ai < bi
	}
	return a.labelVal < b.labelVal
}

func atoi(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

func label(key, val string) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", key, val)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (one # TYPE line per family, cumulative _bucket
// series with le edges plus _sum/_count for histograms).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var last string
	for _, c := range s.Counters {
		if c.Name != last {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.Name); err != nil {
				return err
			}
			last = c.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.Name, label(c.LabelKey, c.LabelVal), c.Value); err != nil {
			return err
		}
	}
	last = ""
	for _, g := range s.Gauges {
		if g.Name != last {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name); err != nil {
				return err
			}
			last = g.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", g.Name, label(g.LabelKey, g.LabelVal), g.Value); err != nil {
			return err
		}
	}
	last = ""
	for _, h := range s.Histograms {
		if h.Name != last {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
				return err
			}
			last = h.Name
		}
		extra := ""
		if h.LabelKey != "" {
			extra = fmt.Sprintf("%s=%q,", h.LabelKey, h.LabelVal)
		}
		ex := make(map[int]ExemplarSnap, len(h.Exemplars))
		for _, e := range h.Exemplars {
			ex[e.Bucket] = e
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			// Exemplars ride the bucket line in the OpenMetrics suffix
			// form: ... # {trace_id="7"} 42
			suffix := ""
			if e, ok := ex[i]; ok {
				suffix = fmt.Sprintf(" # {trace_id=\"%d\"} %d", e.TraceID, e.Value)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d%s\n", h.Name, extra, le, cum, suffix); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", h.Name, label(h.LabelKey, h.LabelVal), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, label(h.LabelKey, h.LabelVal), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a single JSON document. The encoder
// is shared by the -metrics-addr HTTP handler, upmem-profile -json, and
// upmem-top's poller; output is deterministic for a quiescent registry.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadJSON decodes a WriteJSON document back into a Snapshot — the
// inverse used by pollers like upmem-top.
func ReadJSON(r io.Reader, s *Snapshot) error {
	return json.NewDecoder(r).Decode(s)
}

package metrics

import (
	"io"
	"log/slog"
)

// NewEventLog returns a structured JSONL event logger: one JSON object
// per line on w, each carrying the given base attributes (a run id,
// typically) plus whatever the call site attaches (wave, dpu, layer).
// It replaces ad-hoc prints in the command-line tools; the simulation's
// primary (stdout) output never goes through it, preserving the
// bit-identity invariant.
func NewEventLog(w io.Writer, attrs ...slog.Attr) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return slog.New(h).With(args...)
}

package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(1, 2, 4))
	v := r.CounterVec("v", "dpu", 8)
	if c != nil || g != nil || h != nil || v != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	// All updates and reads must be inert, not panic.
	c.Add(3)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
	if v.At(0) != nil || v.Len() != 0 {
		t.Error("nil CounterVec not inert")
	}
	v.At(0).Inc()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name returned distinct counters")
	}
	if r.LabeledCounter("x", "k", "a") == r.LabeledCounter("x", "k", "b") {
		t.Error("distinct labels returned the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name returned distinct gauges")
	}
	h1 := r.Histogram("h", ExpBuckets(1, 2, 4))
	h2 := r.Histogram("h", ExpBuckets(100, 10, 2)) // bounds ignored after first registration
	if h1 != h2 {
		t.Error("same name returned distinct histograms")
	}
	if len(h2.bounds) != 4 || h2.bounds[0] != 1 {
		t.Errorf("second registration changed family bounds: %v", h2.bounds)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{10, 100, 1000})
	h.Observe(5)    // <= 10
	h.Observe(10)   // <= 10 (inclusive edge)
	h.Observe(11)   // <= 100
	h.Observe(1000) // <= 1000
	h.Observe(5000) // +Inf
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 5+10+11+1000+5000 {
		t.Errorf("Sum = %d", h.Sum())
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := ExpBuckets(1000, 4, 3); got[0] != 1000 || got[1] != 4000 || got[2] != 16000 {
		t.Errorf("ExpBuckets = %v", got)
	}
	if got := LinearBuckets(1, 1, 3); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("LinearBuckets = %v", got)
	}
}

func TestCounterVecGrowth(t *testing.T) {
	r := NewRegistry()
	v4 := r.CounterVec("pim_dpu_cycles_total", "dpu", 4)
	v4.At(2).Add(7)
	// A wider system re-registers the family: existing counters survive.
	v8 := r.CounterVec("pim_dpu_cycles_total", "dpu", 8)
	if v8 != v4 {
		t.Fatal("re-registration returned a different vec")
	}
	if v8.Len() != 8 {
		t.Fatalf("Len = %d, want 8", v8.Len())
	}
	if v8.At(2).Value() != 7 {
		t.Error("growth lost an existing counter's value")
	}
	// A narrower re-registration keeps the wider family.
	if r.CounterVec("pim_dpu_cycles_total", "dpu", 2).Len() != 8 {
		t.Error("narrower re-registration shrank the family")
	}
	// Out-of-range indices yield nil, and updating them is inert.
	if v8.At(-1) != nil || v8.At(8) != nil {
		t.Error("out-of-range At not nil")
	}
	v8.At(99).Inc()
	// Vec elements appear as labeled counters in the uniform space.
	if r.LabeledCounter("pim_dpu_cycles_total", "dpu", "2").Value() != 7 {
		t.Error("vec element not visible as a labeled counter")
	}
}

func TestSnapshotNumericLabelOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "dpu", 12)
	for i := 0; i < 12; i++ {
		v.At(i).Add(uint64(i))
	}
	s := r.Snapshot()
	if len(s.Counters) != 12 {
		t.Fatalf("snapshot has %d counters, want 12", len(s.Counters))
	}
	for i, c := range s.Counters {
		if c.LabelVal != itoa(i) {
			t.Fatalf("counter %d has label %q, want %q (numeric-aware sort)", i, c.LabelVal, itoa(i))
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("pim_xfer_total", "dir", "to_dpu").Add(3)
	r.Gauge("pim_queue_depth").Set(2)
	h := r.Histogram("pim_lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pim_xfer_total counter",
		`pim_xfer_total{dir="to_dpu"} 3`,
		"# TYPE pim_queue_depth gauge",
		"pim_queue_depth 2",
		"# TYPE pim_lat histogram",
		`pim_lat_bucket{le="10"} 1`,
		`pim_lat_bucket{le="100"} 2`,
		`pim_lat_bucket{le="+Inf"} 3`,
		"pim_lat_sum 555",
		"pim_lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("c", "dpu", "3").Add(9)
	r.Gauge("g").Set(-4)
	r.Histogram("h", []uint64{8}).Observe(2)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := ReadJSON(strings.NewReader(b.String()), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 9 || s.Counters[0].LabelVal != "3" {
		t.Errorf("counters round-trip: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != -4 {
		t.Errorf("gauges round-trip: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 || len(s.Histograms[0].Counts) != 2 {
		t.Errorf("histograms round-trip: %+v", s.Histograms)
	}
}

func TestHTTPHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("pim_waves_total").Add(5)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "pim_waves_total 5") {
		t.Errorf("text format wrong:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var s Snapshot
	if err := ReadJSON(rec.Body, &s); err != nil {
		t.Fatalf("json format: %v", err)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 5 {
		t.Errorf("json snapshot wrong: %+v", s.Counters)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	h.ServeHTTP(rec, req)
	if err := ReadJSON(rec.Body, &s); err != nil {
		t.Fatalf("Accept json: %v", err)
	}
}

func TestServeAndShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("pim_waves_total").Add(2)
	bound, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	// Default is Prometheus text; re-fetch JSON for a structural check.
	respJ, err := http.Get("http://" + bound + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer respJ.Body.Close()
	if err := ReadJSON(respJ.Body, &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 2 {
		t.Errorf("served snapshot wrong: %+v", s.Counters)
	}
}

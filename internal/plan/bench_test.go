package plan

import (
	"testing"

	"pimdnn/internal/dpu"
)

// BenchmarkPlannerOverhead measures the steady-state planning cost on
// the serving path: every forward re-plans each layer's shape, so after
// the first pass these are all cache hits and must stay allocation-free
// (the benchmark joins the allocs/op gate in scripts/bench.sh).
func BenchmarkPlannerOverhead(b *testing.B) {
	p := NewFromConfig(dpu.SystemDPUs, dpu.DefaultConfig(dpu.O3))
	shapes := [][3]int{
		{16, 1024, 27}, {32, 256, 144}, {64, 64, 288}, {18, 64, 864},
	}
	for _, sh := range shapes { // warm the shape cache
		p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sh := range shapes {
			p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{})
		}
	}
}

// BenchmarkPlanColdSearch prices a cold exhaustive search (first time a
// shape is seen): the full tasklet sweep through the analytic model.
func BenchmarkPlanColdSearch(b *testing.B) {
	cfg := dpu.DefaultConfig(dpu.O3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewFromConfig(dpu.SystemDPUs, cfg)
		p.GEMM(16, 1024, 288, GEMMOptions{})
	}
}

package plan

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/model"
)

func testPlanner() *Planner {
	return NewFromConfig(64, dpu.DefaultConfig(dpu.O3))
}

func TestFixedMappings(t *testing.T) {
	row := Fixed(RowsPerDPU)
	if row.Tasklets != FixedTasklets || row.TileCols != FixedTileCols {
		t.Errorf("Fixed(RowsPerDPU) = %+v", row)
	}
	if FixedTasklets != dpu.PipelineDepth {
		t.Errorf("FixedTasklets %d != pipeline depth %d", FixedTasklets, dpu.PipelineDepth)
	}
	batch := Fixed(ImagePerDPU)
	if batch.Tasklets != FixedBatchTasklets {
		t.Errorf("Fixed(ImagePerDPU) tasklets = %d", batch.Tasklets)
	}
}

// TestGEMMDeterminism: same shape + same topology must always produce
// the same mapping — across repeated calls (cache hits), across fresh
// planners (cold search), and across the memoized/unmemoized boundary.
func TestGEMMDeterminism(t *testing.T) {
	shapes := [][3]int{{16, 256, 27}, {4, 1024, 288}, {64, 100, 1152}, {1, 8, 9}}
	first := make([]Mapping, len(shapes))
	p := testPlanner()
	for i, sh := range shapes {
		first[i] = p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{})
	}
	for round := 0; round < 2; round++ {
		q := testPlanner() // fresh planner: no shared cache
		for i, sh := range shapes {
			if got := p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{}); got != first[i] {
				t.Errorf("repeat plan for %v changed: %+v vs %+v", sh, got, first[i])
			}
			if got := q.GEMM(sh[0], sh[1], sh[2], GEMMOptions{}); got != first[i] {
				t.Errorf("fresh-planner plan for %v changed: %+v vs %+v", sh, got, first[i])
			}
		}
	}
}

// TestExhaustiveVsBeam: on small shapes the hill-climbing beam search
// must land on the exhaustive optimum (same cycles; ties broken the
// same way, so the same tasklet count too).
func TestExhaustiveVsBeam(t *testing.T) {
	p := testPlanner()
	shapes := [][3]int{
		{8, 64, 27}, {16, 256, 27}, {2, 500, 64}, {32, 1024, 288},
		{1, 16, 9}, {10, 300, 1152}, {5, 2048, 64},
	}
	for _, naive := range []bool{false, true} {
		for _, sh := range shapes {
			ex := p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{Naive: naive, Strategy: Exhaustive})
			bm := p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{Naive: naive, Strategy: Beam})
			if ex.Tasklets != bm.Tasklets || ex.PredictedWaveCycles != bm.PredictedWaveCycles {
				t.Errorf("naive=%v shape %v: exhaustive (T=%d, %d cyc) != beam (T=%d, %d cyc)",
					naive, sh, ex.Tasklets, ex.PredictedWaveCycles, bm.Tasklets, bm.PredictedWaveCycles)
			}
		}
		for _, sh := range shapes {
			ex := p.GEMMBatch(sh[0], sh[1], sh[2], 8, GEMMOptions{Strategy: Exhaustive})
			bm := p.GEMMBatch(sh[0], sh[1], sh[2], 8, GEMMOptions{Strategy: Beam})
			if ex.Tasklets != bm.Tasklets || ex.PredictedWaveCycles != bm.PredictedWaveCycles {
				t.Errorf("batch shape %v: exhaustive (T=%d) != beam (T=%d)", sh, ex.Tasklets, bm.Tasklets)
			}
		}
	}
}

// TestWaveGeometry pins the derived axes: wave width is min(shards,
// system), waves cover all shards, pipeline turns on only for
// multi-wave dispatches, and predicted latency scales with waves.
func TestWaveGeometry(t *testing.T) {
	p := testPlanner()
	one := p.GEMM(16, 256, 64, GEMMOptions{})
	if one.DPUs != 16 || one.Waves != 1 || one.Pipeline != host.PipelineOff {
		t.Errorf("16 rows on 64 DPUs: %+v", one)
	}
	multi := p.GEMM(130, 256, 64, GEMMOptions{})
	if multi.DPUs != 64 || multi.Waves != 3 || multi.Pipeline != host.PipelineOn {
		t.Errorf("130 rows on 64 DPUs: %+v", multi)
	}
	if multi.PredictedWaveCycles != one.PredictedWaveCycles {
		t.Errorf("per-wave cycles changed with shard count: %d vs %d",
			multi.PredictedWaveCycles, one.PredictedWaveCycles)
	}
	want := float64(one.PredictedWaveCycles) * 3 / p.Frequency()
	if multi.PredictedSeconds != want {
		t.Errorf("3-wave latency %g, want %g", multi.PredictedSeconds, want)
	}
}

// TestTaskletCapWRAM: the cap shrinks as the shared A row grows, batch
// mode's per-tasklet cache shrinks it further, and it clamps to
// [1, MaxTasklets].
func TestTaskletCapWRAM(t *testing.T) {
	p := testPlanner()
	if c := p.GEMMTaskletCap(64, 256, false); c != dpu.MaxTasklets {
		t.Errorf("small-K cap = %d, want %d", c, dpu.MaxTasklets)
	}
	row := p.GEMMTaskletCap(9216, 256, false)
	batch := p.GEMMTaskletCap(9216, 256, true)
	if row <= batch {
		t.Errorf("row cap %d should exceed batch cap %d at large K", row, batch)
	}
	if batch < 1 {
		t.Errorf("batch cap %d < 1", batch)
	}
	if c := p.GEMMTaskletCap(1<<20, 256, true); c != 1 {
		t.Errorf("infeasible config cap = %d, want floor 1", c)
	}
	// Planned tasklet counts never exceed the cap.
	mp := p.GEMM(8, 512, 9216, GEMMOptions{MaxK: 9216})
	if mp.Tasklets > row {
		t.Errorf("planned %d tasklets above WRAM cap %d", mp.Tasklets, row)
	}
}

// TestPlanPicksCheaperMode: Plan must return whichever of row and batch
// mapping predicts the lower whole-dispatch latency.
func TestPlanPicksCheaperMode(t *testing.T) {
	p := testPlanner()
	for _, tc := range []struct {
		m, n, k, images int
	}{
		{4, 256, 64, 64}, // many small images: batch amortizes waves
		{64, 2048, 576, 2},
	} {
		row := p.GEMM(tc.m, tc.n, tc.k, GEMMOptions{})
		rowTotal := row.PredictedSeconds * float64(tc.images)
		batch := p.GEMMBatch(tc.m, tc.n, tc.k, tc.images, GEMMOptions{})
		got := p.Plan(tc.m, tc.n, tc.k, tc.images, GEMMOptions{})
		wantBatch := batch.PredictedSeconds < rowTotal
		if (got.Mode == ImagePerDPU) != wantBatch {
			t.Errorf("%+v: Plan chose %v (row total %g, batch %g)",
				tc, got.Mode, rowTotal, batch.PredictedSeconds)
		}
	}
}

// TestEBNNPlan pins the multi-image-per-DPU geometry, including the
// partial-final-shard cases.
func TestEBNNPlan(t *testing.T) {
	p := testPlanner()
	sh := model.EBNNShape{Filters: 8, Cells: 49, Side: 28, PackedBytes: 128, ResultBytes: 176, LUTBytes: 152, UseLUT: true}

	full := p.EBNN(sh, 96, 16, Exhaustive)
	if full.DPUs != 6 || full.Waves != 1 {
		t.Errorf("96 images / 16 per DPU: %+v", full)
	}
	if want := float64(full.PredictedWaveCycles) / p.Frequency(); full.PredictedSeconds != want {
		t.Errorf("single-wave seconds %g != wave cycles %g", full.PredictedSeconds, want)
	}

	// A partial shard sharing the only wave with full shards costs
	// nothing extra — the full shards dominate the wave maximum.
	mixed := p.EBNN(sh, 40, 16, Exhaustive)
	if mixed.DPUs != 3 || mixed.Waves != 1 {
		t.Errorf("40 images: %+v", mixed)
	}
	if mixed.PredictedSeconds != full.PredictedSeconds/1 && mixed.PredictedWaveCycles != full.PredictedWaveCycles {
		t.Errorf("mixed wave should cost the full-batch maximum")
	}

	// 64 DPUs * 16 + 8 images: the second wave holds only the 8-image
	// shard and must be priced at the partial cost.
	tail := p.EBNN(sh, 64*16+8, 16, Exhaustive)
	if tail.DPUs != 64 || tail.Waves != 2 {
		t.Errorf("tail case: %+v", tail)
	}
	fullWave := float64(tail.PredictedWaveCycles) / p.Frequency()
	if tail.PredictedSeconds >= 2*fullWave {
		t.Errorf("partial second wave not discounted: %g vs 2x%g", tail.PredictedSeconds, fullWave)
	}

	// Determinism across repeated plans.
	if again := p.EBNN(sh, 96, 16, Exhaustive); again != full {
		t.Errorf("repeat eBNN plan changed: %+v vs %+v", again, full)
	}
}

// TestCacheConcurrency hammers the copy-on-write cache from many
// goroutines (run under -race by the Makefile's race list).
func TestCacheConcurrency(t *testing.T) {
	p := testPlanner()
	shapes := [][3]int{{16, 256, 27}, {4, 1024, 288}, {64, 100, 1152}}
	want := make([]Mapping, len(shapes))
	for i, sh := range shapes {
		want[i] = p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{})
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for round := 0; round < 50; round++ {
				for i, sh := range shapes {
					if got := p.GEMM(sh[0], sh[1], sh[2], GEMMOptions{}); got != want[i] {
						done <- nil
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

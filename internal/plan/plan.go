// Package plan is the cost-model-guided auto-mapper: given a layer's
// GEMM/conv shape and the live system topology, it enumerates candidate
// mappings (rows-per-DPU vs image-per-DPU, tasklet count up to the
// WRAM-feasible limit, DPU count up to the full array, pipeline mode),
// scores each with the kernel-granularity analytic latency model
// (internal/model), and returns a Mapping the gemm/ebnn runners execute
// directly. The planner only picks among existing mapping axes — every
// candidate produces bit-identical outputs — so choosing is purely a
// latency decision, and the analytic score is held against simulated
// latency by the calibration loop (cmd/upmem-profile -calibrate).
package plan

import (
	"sync/atomic"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/model"
)

// Mode names the shard mapping a plan targets.
type Mode uint8

const (
	// RowsPerDPU is the Fig 4.6 mapping: one output row per DPU.
	RowsPerDPU Mode = iota
	// ImagePerDPU is the §6.1 batch mapping: one whole product per DPU.
	ImagePerDPU
)

func (m Mode) String() string {
	if m == ImagePerDPU {
		return "image-per-DPU"
	}
	return "rows-per-DPU"
}

// The hand-tuned constants the planner replaces, kept as the one
// `Fixed` source of truth for every code path that runs without a
// planner (deploys, estimates, serving defaults):
const (
	// FixedTasklets is the thesis's measured row-mode configuration
	// (§4.3.1): one tasklet per pipeline stage.
	FixedTasklets = dpu.PipelineDepth // 11
	// FixedTileCols matches gemm.DefaultTileCols (asserted equal by the
	// gemm tests; plan cannot import gemm, which imports this package).
	FixedTileCols = 256
	// FixedBatchTasklets is the historical image-per-DPU pin used by the
	// batch paths and the full-array benchmarks.
	FixedBatchTasklets = 8
	// FixedEBNNTasklets is one tasklet per image of an ebnn.BatchSize
	// batch (§4.1.3).
	FixedEBNNTasklets = 16
)

// Fixed returns the hand-tuned fallback mapping for a mode — what every
// network ran before the planner existed. Shape-independent fields only;
// DPUs/Waves/Predicted* are zero (unknown without a shape).
func Fixed(mode Mode) Mapping {
	m := Mapping{Mode: mode, Tasklets: FixedTasklets, TileCols: FixedTileCols}
	if mode == ImagePerDPU {
		m.Tasklets = FixedBatchTasklets
	}
	return m
}

// Mapping is one executable mapping choice for a layer shape.
type Mapping struct {
	Mode Mode
	// Tasklets is the per-DPU tasklet count to launch with.
	Tasklets int
	// TileCols is the tiled kernels' WRAM tile width.
	TileCols int
	// Naive selects the thesis-faithful MRAM-resident-ctmp kernel.
	Naive bool
	// DPUs is the wave width: min(shards, system size). Per-wave cycles
	// are DPU-count independent, so fewer DPUs is never faster and the
	// planner always takes the widest wave the shape can fill.
	DPUs int
	// Waves is the number of sequential launches at that width.
	Waves int
	// Pipeline is advisory: PipelineOn when the dispatch spans multiple
	// waves (host staging can overlap queued device work), PipelineOff
	// otherwise. Simulated time is identical either way (see
	// host.PipelineMode); only host wall-clock differs.
	Pipeline host.PipelineMode
	// PredictedWaveCycles is the analytic per-DPU cycle count of one
	// full wave; PredictedSeconds is the whole dispatch through the DPU
	// clock (all waves).
	PredictedWaveCycles uint64
	PredictedSeconds    float64
}

// Strategy selects the candidate-search algorithm.
type Strategy uint8

const (
	// Exhaustive scores every feasible tasklet count (at most
	// dpu.MaxTasklets candidates per shape — cheap, and the default).
	Exhaustive Strategy = iota
	// Beam hill-climbs from a small seed set; equivalent to Exhaustive
	// on the shapes the tests cover, kept for sweeps where the candidate
	// axis is wider than one DPU's tasklet range.
	Beam
)

// GEMMOptions carries the per-runner configuration the planner must
// honor (the axes it does NOT choose: kernel family and tile width are
// allocation-time runner properties) plus search bounds.
type GEMMOptions struct {
	// TileCols is the runner's tile width; 0 means FixedTileCols.
	TileCols int
	// Naive selects the thesis-faithful kernel family.
	Naive bool
	// MaxK is the runner's allocation bound, which sizes the WRAM
	// working set; 0 means the planned shape's own K.
	MaxK int
	// MaxTasklets caps the sweep; 0 derives the WRAM-feasible cap from
	// MaxK/TileCols (see GEMMTaskletCap).
	MaxTasklets int
	// Batch plans the image-per-DPU mapping's WRAM footprint (the
	// per-tasklet A-row cache) into the tasklet cap.
	Batch bool
	// Strategy selects Exhaustive (default) or Beam search.
	Strategy Strategy
}

// Planner scores candidate mappings against one system topology. It is
// safe for concurrent use (the per-shape cache is copy-on-write); a
// cache hit allocates nothing.
type Planner struct {
	dpus  int
	cfg   dpu.Config
	cache atomic.Pointer[[]cacheEntry]
}

// cacheEntry memoizes one shape's search result: the chosen tasklet
// count and per-wave cycles. Shard-count-dependent fields (DPUs, waves,
// total seconds) are recomputed per call — they don't affect the argmin.
type cacheEntry struct {
	mode     Mode
	m, n, k  int // m is 0 for RowsPerDPU (row cost is m-independent)
	tileCols int
	naive    bool
	maxT     int
	tasklets int
	cycles   uint64
}

// New snapshots the system's topology (DPU count and per-DPU config).
func New(sys *host.System) *Planner {
	return NewFromConfig(sys.NumDPUs(), sys.Config().DPU)
}

// NewFromConfig builds a planner for a hypothetical topology — sweeps
// and estimates that never touch a live system.
func NewFromConfig(dpus int, cfg dpu.Config) *Planner {
	if dpus < 1 {
		dpus = 1
	}
	return &Planner{dpus: dpus, cfg: cfg}
}

// DPUs returns the topology size the planner scores against.
func (p *Planner) DPUs() int { return p.dpus }

// Frequency returns the DPU clock the planner converts cycles with.
func (p *Planner) Frequency() float64 { return p.cfg.FrequencyHz }

func pad8(n int) int { return (n + 7) &^ 7 }

// GEMMTaskletCap returns the largest tasklet count whose GEMM WRAM
// working set fits the configured WRAM: the parameter block and staged
// A row are shared, each tasklet owns a tile area (B chunk + ctmp + C
// out, 8 bytes/column), and batch mode adds a per-tasklet A-row cache.
// Returns at least 1 (an infeasible-even-at-1 config fails at runner
// allocation, not here).
func (p *Planner) GEMMTaskletCap(maxK, tileCols int, batch bool) int {
	if tileCols <= 0 {
		tileCols = FixedTileCols
	}
	shared := int64(24) + int64(pad8(maxK*2))
	per := int64(tileCols) * 8
	if batch {
		per += int64(pad8(maxK * 2))
	}
	free := int64(p.cfg.WRAMSize) - shared
	cap := int(free / per)
	if cap < 1 {
		cap = 1
	}
	if cap > dpu.MaxTasklets {
		cap = dpu.MaxTasklets
	}
	return cap
}

func (o *GEMMOptions) normalize(p *Planner, k int, batch bool) {
	if o.TileCols <= 0 {
		o.TileCols = FixedTileCols
	}
	if o.MaxK <= 0 {
		o.MaxK = k
	}
	o.Batch = o.Batch || batch
	if o.MaxTasklets <= 0 {
		o.MaxTasklets = p.GEMMTaskletCap(o.MaxK, o.TileCols, o.Batch)
	}
	if o.MaxTasklets > dpu.MaxTasklets {
		o.MaxTasklets = dpu.MaxTasklets
	}
}

// GEMM plans the rows-per-DPU mapping for an m×n×k GEMM: it sweeps the
// tasklet axis, scoring each candidate with the analytic kernel model,
// and fills the wave geometry for m shards. Same shape + same topology
// always returns the same Mapping (the search is deterministic and
// memoized).
func (p *Planner) GEMM(m, n, k int, o GEMMOptions) Mapping {
	o.normalize(p, k, false)
	kc := model.KernelConfig{Opt: p.cfg.Opt, TileCols: o.TileCols, Naive: o.Naive}
	tasklets, cycles := p.searched(RowsPerDPU, 0, n, k, o, func(t int) uint64 {
		kc.Tasklets = t
		return model.GEMMRowCycles(n, k, kc)
	})
	mp := Mapping{
		Mode:                RowsPerDPU,
		Tasklets:            tasklets,
		TileCols:            o.TileCols,
		Naive:               o.Naive,
		PredictedWaveCycles: cycles,
	}
	p.finish(&mp, m)
	return mp
}

// GEMMBatch plans the image-per-DPU mapping: each of `images` DPUs
// computes the whole m×n×k product for its own B matrix. The per-DPU
// cost is image-count independent, so the memoized search keys on the
// problem shape alone and the wave geometry follows the image count.
func (p *Planner) GEMMBatch(m, n, k, images int, o GEMMOptions) Mapping {
	o.normalize(p, k, true)
	kc := model.KernelConfig{Opt: p.cfg.Opt, TileCols: o.TileCols, Naive: false}
	tasklets, cycles := p.searched(ImagePerDPU, m, n, k, o, func(t int) uint64 {
		kc.Tasklets = t
		return model.GEMMBatchCycles(m, n, k, kc)
	})
	mp := Mapping{
		Mode:                ImagePerDPU,
		Tasklets:            tasklets,
		TileCols:            o.TileCols,
		PredictedWaveCycles: cycles,
	}
	p.finish(&mp, images)
	return mp
}

// Plan enumerates both shard mappings for a GEMM layer — rows-per-DPU
// (m row shards) against image-per-DPU (`images` whole-product shards)
// — and returns the one with the lower predicted latency for the whole
// dispatch. Callers whose execution path fixes the mapping (Multiply vs
// MultiplyBatch) use GEMM/GEMMBatch directly.
func (p *Planner) Plan(m, n, k, images int, o GEMMOptions) Mapping {
	row := p.GEMM(m, n, k, o)
	if images < 1 {
		return row
	}
	// Row mode processes the batch serially: one forward per image.
	row.PredictedSeconds *= float64(images)
	batch := p.GEMMBatch(m, n, k, images, o)
	if batch.PredictedSeconds < row.PredictedSeconds {
		return batch
	}
	return row
}

// EBNN plans the multiple-images-per-DPU eBNN mapping: shards of up to
// batchSize images per DPU. The tasklet choice targets the dominant
// (full-batch) wave; the predicted latency sums every wave, including a
// final partial one.
func (p *Planner) EBNN(sh model.EBNNShape, images, batchSize int, strategy Strategy) Mapping {
	if images < 1 {
		images = batchSize
	}
	perDPU := images
	if perDPU > batchSize {
		perDPU = batchSize
	}
	tasklets, cycles := searchTasklets(dpu.MaxTasklets, strategy, func(t int) uint64 {
		return model.EBNNWaveCycles(sh, perDPU, t, p.cfg.Opt)
	})
	shards := (images + batchSize - 1) / batchSize
	mp := Mapping{
		Mode:                ImagePerDPU,
		Tasklets:            tasklets,
		PredictedWaveCycles: cycles,
	}
	p.finish(&mp, shards)
	// Waves holding any full shard cost the full-batch cycles; only a
	// final wave consisting solely of the partial shard costs less.
	lastWaveShards := shards - (mp.Waves-1)*mp.DPUs
	if last := images - (shards-1)*batchSize; last != batchSize && lastWaveShards == 1 && shards > 1 {
		partial := model.EBNNWaveCycles(sh, last, tasklets, p.cfg.Opt)
		total := uint64(mp.Waves-1)*cycles + partial
		mp.PredictedSeconds = float64(total) / p.cfg.FrequencyHz
	}
	return mp
}

// finish fills the shard-count-dependent wave geometry and converts
// cycles to seconds.
func (p *Planner) finish(mp *Mapping, shards int) {
	if shards < 1 {
		shards = 1
	}
	width := shards
	if width > p.dpus {
		width = p.dpus
	}
	mp.DPUs = width
	mp.Waves = (shards + width - 1) / width
	mp.Pipeline = host.PipelineOff
	if mp.Waves > 1 {
		mp.Pipeline = host.PipelineOn
	}
	mp.PredictedSeconds = float64(mp.PredictedWaveCycles) * float64(mp.Waves) / p.cfg.FrequencyHz
}

// searched memoizes searchTasklets per shape. The hot path (repeated
// forwards over the same network) hits the copy-on-write cache and
// allocates nothing.
func (p *Planner) searched(mode Mode, m, n, k int, o GEMMOptions, cost func(int) uint64) (int, uint64) {
	cached := p.cache.Load()
	if cached != nil {
		for i := range *cached {
			e := &(*cached)[i]
			if e.mode == mode && e.m == m && e.n == n && e.k == k &&
				e.tileCols == o.TileCols && e.naive == o.Naive && e.maxT == o.MaxTasklets {
				return e.tasklets, e.cycles
			}
		}
	}
	tasklets, cycles := searchTasklets(o.MaxTasklets, o.Strategy, cost)
	next := make([]cacheEntry, 0, 8)
	if cached != nil {
		next = append(next, *cached...)
	}
	next = append(next, cacheEntry{
		mode: mode, m: m, n: n, k: k,
		tileCols: o.TileCols, naive: o.Naive, maxT: o.MaxTasklets,
		tasklets: tasklets, cycles: cycles,
	})
	p.cache.Store(&next)
	return tasklets, cycles
}

// searchTasklets finds the tasklet count in [1, maxT] minimizing cost,
// breaking ties toward fewer tasklets (less WRAM pressure, identical
// latency). Exhaustive scans every candidate; Beam hill-climbs from
// three seeds (1, the pipeline depth, maxT) — the cost curve is
// piecewise monotone in practice, and the equivalence is asserted on
// small shapes by the tests.
func searchTasklets(maxT int, s Strategy, cost func(int) uint64) (int, uint64) {
	if maxT < 1 {
		maxT = 1
	}
	if s == Beam {
		return beamSearch(maxT, cost)
	}
	best, bestC := 1, cost(1)
	for t := 2; t <= maxT; t++ {
		if c := cost(t); c < bestC {
			best, bestC = t, c
		}
	}
	return best, bestC
}

func beamSearch(maxT int, cost func(int) uint64) (int, uint64) {
	seeds := [3]int{1, dpu.PipelineDepth, maxT}
	best, bestC := 0, ^uint64(0)
	for _, s := range seeds {
		if s < 1 || s > maxT {
			continue
		}
		t, c := s, cost(s)
		for {
			moved := false
			for _, nb := range [2]int{t - 1, t + 1} {
				if nb < 1 || nb > maxT {
					continue
				}
				if nc := cost(nb); nc < c || (nc == c && nb < t) {
					t, c = nb, nc
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		if c < bestC || (c == bestC && t < best) {
			best, bestC = t, c
		}
	}
	return best, bestC
}

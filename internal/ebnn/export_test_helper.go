package ebnn

import "pimdnn/internal/dpu"

// KernelForTest exposes the runner's DPU kernel so cross-package tests
// can relaunch it directly and inspect per-launch statistics (tasklet
// breakdowns, DMA shares) that Infer aggregates away.
func KernelForTest(r *Runner) dpu.KernelFunc {
	return r.kernel()
}

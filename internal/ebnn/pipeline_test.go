package ebnn

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

// The pipelined (double-buffered, queue-fused) Infer must match the
// synchronous wave loop in everything observable except wall-clock:
// identical predictions in identical order and identical simulated-time
// statistics, including when the image count forces partial waves and
// unevenly filled DPUs.
func TestInferPipelinedMatchesSync(t *testing.T) {
	ds := mnist.Load(180, 64, 47)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(mode host.PipelineMode, images []mnist.Image) ([]int, BatchStats) {
		sys, err := host.NewSystem(4, host.DefaultConfig(dpu.O0))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		r, err := NewRunner(sys, m, true, 16)
		if err != nil {
			t.Fatal(err)
		}
		r.SetPipeline(mode)
		preds, st, err := r.Infer(images)
		if err != nil {
			t.Fatal(err)
		}
		return preds, st
	}

	// 64 test images on 4 DPUs at batch size 16: one full wave. 150
	// images: two full waves plus a ragged 22-image wave where DPU 1
	// holds fewer images than DPU 0 and DPUs 2-3 are idle.
	for _, n := range []int{64, 150} {
		images := ds.Test[:0:0]
		for len(images) < n {
			images = append(images, ds.Test[:min(n-len(images), len(ds.Test))]...)
		}
		pSync, stSync := run(host.PipelineOff, images)
		pPipe, stPipe := run(host.PipelineOn, images)
		if len(pSync) != len(pPipe) {
			t.Fatalf("n=%d: sync returned %d predictions, pipelined %d", n, len(pSync), len(pPipe))
		}
		for i := range pSync {
			if pSync[i] != pPipe[i] {
				t.Errorf("n=%d image %d: sync predicted %d, pipelined %d", n, i, pSync[i], pPipe[i])
			}
		}
		if stSync != stPipe {
			t.Errorf("n=%d: stats diverge: sync %+v, pipelined %+v", n, stSync, stPipe)
		}
	}
}

// A pipelined runner must stay correct across successive Infer calls of
// different sizes on the same system: leftover slot state from a larger
// earlier call must not leak into a smaller later one.
func TestInferPipelinedRepeatedCalls(t *testing.T) {
	ds := mnist.Load(150, 32, 48)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r, err := NewRunner(sys, m, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.SetPipeline(host.PipelineOn)
	lut := m.BuildLUT()
	for _, n := range []int{32, 7, 20} {
		preds, _, err := r.Infer(ds.Test[:n])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			want := m.PredictFeatures(m.FeaturesViaLUT(&ds.Test[i], lut))
			if preds[i] != want {
				t.Errorf("n=%d image %d: DPU %d, host %d", n, i, preds[i], want)
			}
		}
	}
}

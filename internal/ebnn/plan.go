package ebnn

import (
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/model"
	"pimdnn/internal/plan"
)

// CostShape returns the workload geometry the kernel-granularity cost
// model (model.EBNNWaveCycles) scores eBNN waves with — this package's
// layout constants, exported as plain numbers so neither model nor plan
// needs to import ebnn.
func CostShape(f int, useLUT bool) model.EBNNShape {
	sh := model.EBNNShape{
		Filters:     f,
		Cells:       PoolCells,
		Side:        mnist.Side,
		PackedBytes: mnist.PackedSize,
		ResultBytes: ResultSize,
		UseLUT:      useLUT,
	}
	if useLUT {
		sh.LUTBytes = lutWRAMSize
	}
	return sh
}

// PlanMapping asks the auto-mapper for this model's
// multiple-images-per-DPU mapping over `images` images.
func PlanMapping(p *plan.Planner, m *Model, useLUT bool, images int) plan.Mapping {
	return p.EBNN(CostShape(m.F, useLUT), images, BatchSize, plan.Exhaustive)
}

// NewRunnerMapped deploys the model with a planner-produced mapping:
// the mapping's tasklet count replaces the hand-tuned constant
// (plan.FixedEBNNTasklets) the fixed path pins.
func NewRunnerMapped(sys *host.System, m *Model, useLUT bool, mp plan.Mapping) (*Runner, error) {
	return NewRunner(sys, m, useLUT, mp.Tasklets)
}

// NewPlannedRunner plans the mapping against the system's topology (for
// full per-DPU batches — the steady-state shape) and deploys with it.
// A nil planner plans against sys directly.
func NewPlannedRunner(sys *host.System, m *Model, useLUT bool, p *plan.Planner) (*Runner, plan.Mapping, error) {
	if p == nil {
		p = plan.New(sys)
	}
	mp := PlanMapping(p, m, useLUT, BatchSize*sys.NumDPUs())
	r, err := NewRunnerMapped(sys, m, useLUT, mp)
	return r, mp, err
}

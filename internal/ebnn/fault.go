package ebnn

import (
	"errors"
	"fmt"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// Retry-and-remap for the multiple-images-per-DPU mapping, mirroring the
// policy in internal/gemm: per-DPU faults reported by the host's
// best-effort operations mark the affected 16-image batch failed, and
// each failed batch is re-dispatched onto a surviving DPU (push its
// images and count, single-DPU launch, gather its results). The kernel
// is a deterministic function of its inputs, so the predictions are
// bit-identical to a fault-free run. DPUs that die or persistently miss
// a model broadcast (filters, LUT, BN parameters) are marked down: they
// are excluded from re-dispatch and their batches are always re-run,
// since a DPU with a stale model would otherwise "succeed" silently.

// maxRedispatch bounds how many targets one batch (or one broadcast
// redelivery) tries before the fault is reported as fatal.
const maxRedispatch = 8

// ensureFaultState sizes the runner's fault-tracking slices.
func (r *Runner) ensureFaultState() {
	if r.down == nil {
		r.down = make([]bool, r.sys.NumDPUs())
		r.failSet = make([]bool, r.sys.NumDPUs())
	}
}

// markDown removes DPU i from the re-dispatch target pool for the rest
// of the runner's life.
func (r *Runner) markDown(i int) {
	if !r.down[i] {
		r.down[i] = true
		r.nDown++
	}
}

// nextTarget picks the next usable re-dispatch target, round-robin so
// retried batches spread across the survivors. Returns -1 when no DPU
// survives.
func (r *Runner) nextTarget() int {
	nd := r.sys.NumDPUs()
	if r.nDown >= nd {
		return -1
	}
	for t := 0; t < nd; t++ {
		i := (r.retryCur + t) % nd
		if !r.down[i] {
			r.retryCur = (i + 1) % nd
			return i
		}
	}
	return -1
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// mergeFailed folds a best-effort operation's *FaultReport into the
// wave's failed-batch set (indices beyond the wave width are ignored: a
// scatter fault on a DPU holding no images this wave is harmless). DPUs
// that died leave the re-dispatch pool. A non-report error is fatal.
func (r *Runner) mergeFailed(failed []bool, err error) error {
	if err == nil {
		return nil
	}
	rep, ok := host.AsFaultReport(err)
	if !ok {
		return err
	}
	for _, f := range rep.Faults {
		if errors.Is(f.Err, dpu.ErrDPUDead) {
			r.markDown(f.DPU)
		}
		if f.DPU < len(failed) {
			failed[f.DPU] = true
		}
	}
	return nil
}

// redeliver retries a broadcast payload on one DPU that missed it. In
// pipelined mode the redelivery goes through the command queue, keeping
// it serialized against other runners sharing the System.
func (r *Runner) redeliver(i int, ref host.SymbolRef, data []byte) bool {
	for a := 0; a < maxRedispatch; a++ {
		var err error
		if r.pipe {
			err = r.sys.EnqueueCopyToDPU(i, ref, 0, data).Wait()
		} else {
			err = r.sys.CopyToDPURef(i, ref, 0, data)
		}
		if err == nil {
			return true
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			return false
		}
		if _, ok := host.AsFaultReport(err); !ok {
			return false
		}
	}
	return false
}

// handleBroadcast completes a best-effort model broadcast: DPUs named in
// the report get the payload redelivered; those that cannot be reached
// are marked down, so their stale model never contributes predictions.
// A non-report error is fatal.
func (r *Runner) handleBroadcast(err error, ref host.SymbolRef, data []byte) error {
	if err == nil {
		return nil
	}
	rep, ok := host.AsFaultReport(err)
	if !ok {
		return err
	}
	for _, f := range rep.Faults {
		if r.down[f.DPU] {
			continue
		}
		if !r.redeliver(f.DPU, ref, data) {
			r.markDown(f.DPU)
		}
	}
	return nil
}

// redispatchBatch re-runs one failed 16-image batch on a surviving DPU:
// push the batch's packed images and image count, launch the kernel on
// that DPU alone, and gather its result buffer into out. The retry's
// cycles are added to st, so the stats reflect the degraded run's real
// cost. In pipelined mode the four steps are queued commands, serialized
// with any waves already enqueued.
func (r *Runner) redispatchBatch(imgBuf, cntBuf, out []byte, st *BatchStats) error {
	for a := 0; a < maxRedispatch; a++ {
		t := r.nextTarget()
		if t < 0 {
			return fmt.Errorf("ebnn: no surviving DPU to re-dispatch onto")
		}
		var ls host.LaunchStats
		var err error
		if r.pipe {
			p1 := r.sys.EnqueueCopyToDPU(t, r.refImages, 0, imgBuf)
			p2 := r.sys.EnqueueCopyToDPU(t, r.refNImages, 0, cntBuf)
			p3 := r.sys.EnqueueLaunchDPU(t, r.tasklets, r.kernelFn, &ls)
			p4 := r.sys.EnqueueCopyFrom(t, r.refResults, 0, out)
			err = firstErr(p1.Wait(), p2.Wait(), p3.Wait(), p4.Wait())
		} else {
			err = r.sys.CopyToDPURef(t, r.refImages, 0, imgBuf)
			if err == nil {
				err = r.sys.CopyToDPURef(t, r.refNImages, 0, cntBuf)
			}
			if err == nil {
				ls, err = r.sys.LaunchDPU(t, r.tasklets, r.kernelFn)
			}
			if err == nil {
				err = r.sys.CopyFromDPURefInto(t, r.refResults, 0, out)
			}
		}
		if err == nil {
			st.Retries++
			st.Cycles += ls.Cycles
			st.DPUSeconds += ls.Seconds
			return nil
		}
		if errors.Is(err, dpu.ErrDPUDead) {
			r.markDown(t)
			continue
		}
		if _, ok := host.AsFaultReport(err); !ok {
			return err
		}
		// Transient fault: try again, possibly on another target.
	}
	return fmt.Errorf("ebnn: batch re-dispatch failed %d times", maxRedispatch)
}

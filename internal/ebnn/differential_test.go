package ebnn

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
)

// TestBlockChargingParity is the eBNN arm of the differential harness:
// it runs the same inference through the block-charged kernel and the
// per-op legacy kernel on identical systems and asserts the two are
// indistinguishable — predictions, raw result bytes, system cycle
// counts, subroutine profiles, per-DPU instruction mixes and
// per-tasklet breakdowns — across both activation modes and several
// optimization levels.
func TestBlockChargingParity(t *testing.T) {
	m, ds := trainForKernel(t)
	imgs := ds.Test[:19] // 2 DPUs: a full 16-image batch plus a partial one

	for _, useLUT := range []bool{false, true} {
		for _, opt := range []dpu.OptLevel{dpu.O0, dpu.O2, dpu.O3} {
			t.Run(fmt.Sprintf("lut=%v/opt=O%d", useLUT, int(opt)), func(t *testing.T) {
				mk := func(legacy bool) (*Runner, *host.System) {
					sys, err := host.NewSystem(2, host.DefaultConfig(opt))
					if err != nil {
						t.Fatal(err)
					}
					r, err := NewRunner(sys, m, useLUT, 11)
					if err != nil {
						t.Fatal(err)
					}
					r.SetLegacyCharging(legacy)
					return r, sys
				}
				rBlock, sysBlock := mk(false)
				rLegacy, sysLegacy := mk(true)

				pBlock, stBlock, err := rBlock.Infer(imgs)
				if err != nil {
					t.Fatalf("block Infer: %v", err)
				}
				pLegacy, stLegacy, err := rLegacy.Infer(imgs)
				if err != nil {
					t.Fatalf("legacy Infer: %v", err)
				}

				if !reflect.DeepEqual(pBlock, pLegacy) {
					t.Errorf("predictions diverge: block %v, legacy %v", pBlock, pLegacy)
				}
				if stBlock.Cycles != stLegacy.Cycles || stBlock.Seconds != stLegacy.Seconds {
					t.Errorf("cycle accounting diverges: block %d cycles / %g s, legacy %d cycles / %g s",
						stBlock.Cycles, stBlock.Seconds, stLegacy.Cycles, stLegacy.Seconds)
				}
				if !reflect.DeepEqual(sysBlock.Profile().Snapshot(), sysLegacy.Profile().Snapshot()) {
					t.Errorf("subroutine profiles diverge:\nblock:  %v\nlegacy: %v",
						sysBlock.Profile().Snapshot(), sysLegacy.Profile().Snapshot())
				}
				for d := 0; d < 2; d++ {
					rawB, err := sysBlock.CopyFromDPU(d, symResults, 0, BatchSize*ResultSize)
					if err != nil {
						t.Fatal(err)
					}
					rawL, err := sysLegacy.CopyFromDPU(d, symResults, 0, BatchSize*ResultSize)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(rawB, rawL) {
						t.Errorf("DPU %d result bytes diverge", d)
					}
				}

				// Relaunch the resident batch directly to compare the full
				// per-DPU statistics (Infer's engine aggregates them away).
				lsBlock, err := sysBlock.LaunchOn(2, 11, rBlock.kernelFn)
				if err != nil {
					t.Fatal(err)
				}
				lsLegacy, err := sysLegacy.LaunchOn(2, 11, rLegacy.kernelFn)
				if err != nil {
					t.Fatal(err)
				}
				for d := range lsBlock.PerDPU {
					b, l := lsBlock.PerDPU[d], lsLegacy.PerDPU[d]
					if b.IssueSlots != l.IssueSlots || b.DMACycles != l.DMACycles || b.Cycles != l.Cycles {
						t.Errorf("DPU %d cycles diverge: block slots=%d dma=%d cyc=%d, legacy slots=%d dma=%d cyc=%d",
							d, b.IssueSlots, b.DMACycles, b.Cycles, l.IssueSlots, l.DMACycles, l.Cycles)
					}
					if b.OpCounts != l.OpCounts {
						t.Errorf("DPU %d instruction mix diverges:\nblock:  %v\nlegacy: %v",
							d, b.OpCounts, l.OpCounts)
					}
					if !reflect.DeepEqual(b.PerTasklet, l.PerTasklet) {
						t.Errorf("DPU %d per-tasklet breakdown diverges:\nblock:  %v\nlegacy: %v",
							d, b.PerTasklet, l.PerTasklet)
					}
				}
			})
		}
	}
}

package ebnn

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

func trainForKernel(t *testing.T) (*Model, mnist.Dataset) {
	t.Helper()
	ds := mnist.Load(200, 40, 21)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, ds
}

func newRunner(t *testing.T, nDPU int, m *Model, useLUT bool, tasklets int) *Runner {
	t.Helper()
	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sys, m, useLUT, tasklets)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerValidation(t *testing.T) {
	m, _ := trainForKernel(t)
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O0))
	if _, err := NewRunner(sys, m, true, 0); err == nil {
		t.Error("0 tasklets accepted")
	}
	if _, err := NewRunner(sys, m, true, 25); err == nil {
		t.Error("25 tasklets accepted")
	}
	bad := &Model{F: 9}
	if _, err := NewRunner(sys, bad, true, 4); err == nil {
		t.Error("9 filters accepted")
	}
}

// TestDPUMatchesHostLUT: the LUT kernel's activation bits must equal the
// host LUT reference bit-for-bit.
func TestDPUMatchesHostLUT(t *testing.T) {
	m, ds := trainForKernel(t)
	r := newRunner(t, 1, m, true, 8)
	imgs := ds.Test[:4]
	preds, _, err := r.Infer(imgs)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	lut := m.BuildLUT()
	for i := range imgs {
		want := m.PredictFeatures(m.FeaturesViaLUT(&imgs[i], lut))
		if preds[i] != want {
			t.Errorf("image %d: DPU pred %d, host pred %d", i, preds[i], want)
		}
	}
	// Bit-level check through the raw result buffer.
	raw, err := r.sys.CopyFromDPU(0, symResults, 0, len(imgs)*ResultSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		gotF := DecodeFeatures(raw[i*ResultSize:(i+1)*ResultSize], m.F)
		wantF := m.FeaturesViaLUT(&imgs[i], lut)
		for j := range wantF {
			if gotF[j] != wantF[j] {
				t.Fatalf("image %d feature %d: DPU %d, host %d", i, j, gotF[j], wantF[j])
			}
		}
	}
}

// TestDPUMatchesHostFloat: the default (Fig 4.2a) kernel computes BN via
// DPU software floating point and must reproduce the host float32
// reference exactly (softfloat is bit-exact).
func TestDPUMatchesHostFloat(t *testing.T) {
	m, ds := trainForKernel(t)
	r := newRunner(t, 1, m, false, 8)
	imgs := ds.Test[:4]
	if _, _, err := r.Infer(imgs); err != nil {
		t.Fatalf("Infer: %v", err)
	}
	raw, err := r.sys.CopyFromDPU(0, symResults, 0, len(imgs)*ResultSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		gotF := DecodeFeatures(raw[i*ResultSize:(i+1)*ResultSize], m.F)
		wantF := m.Features(&imgs[i])
		for j := range wantF {
			if gotF[j] != wantF[j] {
				t.Fatalf("image %d feature %d: DPU %d, host %d", i, j, gotF[j], wantF[j])
			}
		}
	}
}

// TestFig43SubroutineReduction reproduces Fig 4.3: the default model
// calls a spread of floating-point subroutines; the LUT model eliminates
// all of them, leaving only integer helpers (__mulsi3).
func TestFig43SubroutineReduction(t *testing.T) {
	m, ds := trainForKernel(t)
	imgs := ds.Test[:16]

	rFloat := newRunner(t, 1, m, false, 16)
	if _, _, err := rFloat.Infer(imgs); err != nil {
		t.Fatal(err)
	}
	floatSubs := rFloat.sys.Profile().FloatSubroutines()
	if len(floatSubs) < 4 {
		t.Errorf("default model float subroutines = %v, want >= 4 kinds", floatSubs)
	}

	rLUT := newRunner(t, 1, m, true, 16)
	if _, _, err := rLUT.Infer(imgs); err != nil {
		t.Fatal(err)
	}
	if subs := rLUT.sys.Profile().FloatSubroutines(); len(subs) != 0 {
		t.Errorf("LUT model still calls float subroutines: %v", subs)
	}
	if occ := rLUT.sys.Profile().Occ("__mulsi3"); occ == 0 {
		t.Error("LUT model lost its __mulsi3 calls (Fig 4.3b shows them remaining)")
	}
}

// TestFig44LUTSpeedup reproduces Fig 4.4: the LUT architecture speeds up
// a 16-image batch. The thesis measures 1.4x; we assert the LUT wins by a
// same-order factor (1.2x–3x).
func TestFig44LUTSpeedup(t *testing.T) {
	m, ds := trainForKernel(t)
	imgs := ds.Test[:16]

	run := func(useLUT bool) uint64 {
		r := newRunner(t, 1, m, useLUT, 16)
		_, st, err := r.Infer(imgs)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	floatCycles := run(false)
	lutCycles := run(true)
	speedup := float64(floatCycles) / float64(lutCycles)
	if speedup < 1.2 || speedup > 3.0 {
		t.Errorf("LUT speedup = %.2fx (float %d, LUT %d cycles); paper reports 1.4x, want same order",
			speedup, floatCycles, lutCycles)
	}
	t.Logf("Fig 4.4: LUT speedup %.2fx (paper: 1.4x)", speedup)
}

// TestTaskletScalingShape reproduces the eBNN curve of Fig 4.7(a): more
// tasklets help until the pipeline saturates; 16 tasklets beat 11 because
// 16 images split evenly (ceil(16/11)=2 vs 16/16=1 images per tasklet).
func TestTaskletScalingShape(t *testing.T) {
	m, ds := trainForKernel(t)
	imgs := ds.Test[:16]
	cycles := map[int]uint64{}
	for _, tl := range []int{1, 4, 11, 16} {
		r := newRunner(t, 1, m, true, tl)
		_, st, err := r.Infer(imgs)
		if err != nil {
			t.Fatal(err)
		}
		cycles[tl] = st.Cycles
	}
	if !(cycles[1] > cycles[4] && cycles[4] > cycles[11]) {
		t.Errorf("speedup not increasing: %v", cycles)
	}
	if cycles[16] >= cycles[11] {
		t.Errorf("16 tasklets (%d cycles) should beat 11 (%d) on a 16-image batch",
			cycles[16], cycles[11])
	}
}

func TestPartialBatchAndPadding(t *testing.T) {
	m, ds := trainForKernel(t)
	r := newRunner(t, 2, m, true, 4)
	// 19 images over 2 DPUs: 16 + 3, exercising the nimages variable
	// that keeps the DPU off the padded slots (§3.2).
	imgs := ds.Test[:19]
	preds, st, err := r.Infer(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 19 {
		t.Fatalf("got %d predictions", len(preds))
	}
	if st.DPUsUsed != 2 || st.Waves != 1 {
		t.Errorf("stats = %+v", st)
	}
	lut := m.BuildLUT()
	for i := range imgs {
		want := m.PredictFeatures(m.FeaturesViaLUT(&imgs[i], lut))
		if preds[i] != want {
			t.Errorf("image %d: pred %d, want %d", i, preds[i], want)
		}
	}
}

func TestMultiWave(t *testing.T) {
	m, ds := trainForKernel(t)
	r := newRunner(t, 1, m, true, 8)
	// 20 images on a 1-DPU system: 2 waves of 16 + 4.
	imgs := ds.Test[:20]
	preds, st, err := r.Infer(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Waves != 2 {
		t.Errorf("waves = %d, want 2", st.Waves)
	}
	if len(preds) != 20 {
		t.Errorf("predictions = %d", len(preds))
	}
	if st.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestInferEmpty(t *testing.T) {
	m, _ := trainForKernel(t)
	r := newRunner(t, 1, m, true, 4)
	if _, _, err := r.Infer(nil); err == nil {
		t.Error("empty inference accepted")
	}
}

// TestDPUAccuracyEndToEnd: classification through the simulated PIM
// matches host accuracy.
func TestDPUAccuracyEndToEnd(t *testing.T) {
	m, ds := trainForKernel(t)
	r := newRunner(t, 2, m, true, 16)
	imgs := ds.Test[:32]
	preds, _, err := r.Infer(imgs)
	if err != nil {
		t.Fatal(err)
	}
	hostHits, dpuHits := 0, 0
	for i := range imgs {
		if m.Predict(&imgs[i]) == imgs[i].Label {
			hostHits++
		}
		if preds[i] == imgs[i].Label {
			dpuHits++
		}
	}
	// The LUT and the float threshold encode the same function here, so
	// accuracy must match exactly.
	if dpuHits != hostHits {
		t.Errorf("DPU hits %d != host hits %d", dpuHits, hostHits)
	}
}

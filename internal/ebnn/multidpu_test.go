package ebnn

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

// TestMultiDPUParallelism verifies the §4.1.3 claim behind Fig 4.7(c):
// N DPUs finish N batches in the time of one ("run in parallel to finish
// their batch of images at the max time for one DPU"), so throughput is
// linear in DPU count.
func TestMultiDPUParallelism(t *testing.T) {
	ds := mnist.Load(200, 64, 41)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(nDPU, images int) BatchStats {
		sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O0))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(sys, m, true, 16)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := r.Infer(ds.Test[:images])
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	one := run(1, 16)  // 1 DPU, 1 batch
	four := run(4, 64) // 4 DPUs, 4 batches in parallel
	// 4x the images in (approximately) the same wall time: per-DPU
	// image counts are equal, so the parallel max matches one batch.
	ratio := four.Seconds / one.Seconds
	if ratio > 1.05 {
		t.Errorf("4 DPUs on 4x images took %.2fx one batch, want ~1x (parallel)", ratio)
	}
	if four.Throughput() < one.Throughput()*3.5 {
		t.Errorf("throughput scaled %.1fx with 4 DPUs, want ~4x",
			four.Throughput()/one.Throughput())
	}
}

// TestFilterCountGenerality: the runner must work for any 1..8 filters,
// with the result byte carrying exactly F meaningful bits.
func TestFilterCountGenerality(t *testing.T) {
	ds := mnist.Load(120, 8, 43)
	for _, f := range []int{1, 4, 8} {
		cfg := DefaultTrainConfig()
		cfg.Filters = f
		cfg.Epochs = 4
		m, err := Train(ds, cfg)
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O0))
		r, err := NewRunner(sys, m, true, 8)
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		preds, _, err := r.Infer(ds.Test)
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		lut := m.BuildLUT()
		for i := range ds.Test {
			want := m.PredictFeatures(m.FeaturesViaLUT(&ds.Test[i], lut))
			if preds[i] != want {
				t.Errorf("F=%d image %d: DPU %d, host %d", f, i, preds[i], want)
			}
		}
		// Unused filter bits in the result byte must be zero.
		raw, err := r.sys.CopyFromDPU(0, symResults, 0, ResultSize)
		if err != nil {
			t.Fatal(err)
		}
		for cell := 0; cell < PoolCells; cell++ {
			if raw[cell]>>uint(f) != 0 {
				t.Fatalf("F=%d: cell %d has bits above filter count: %08b", f, cell, raw[cell])
			}
		}
	}
}

// TestLUTWRAMStagingCharged: the LUT copy from MRAM to WRAM (§4.1.4) must
// appear in tasklet 0's DMA accounting.
func TestLUTWRAMStagingCharged(t *testing.T) {
	ds := mnist.Load(100, 4, 44)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O0))
	r, err := NewRunner(sys, m, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Infer(ds.Test); err != nil {
		t.Fatal(err)
	}
	// Rerun the kernel directly to inspect per-launch stats: DMA must
	// include the 152-byte LUT staging transfer (25 + 76 cycles).
	st, err := sys.DPU(0).Launch(2, r.kernel())
	if err != nil {
		t.Fatal(err)
	}
	if st.DMACycles < dpu.DMACost(lutWRAMSize) {
		t.Errorf("DMA cycles %d do not cover the LUT staging transfer (%d)",
			st.DMACycles, dpu.DMACost(lutWRAMSize))
	}
}

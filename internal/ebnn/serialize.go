package ebnn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pimdnn/internal/mnist"
)

// Model serialization: a small versioned binary format so trained models
// move between processes (the host trains once, deployments reload). All
// fields are little-endian.

const (
	modelMagic   = 0x4e4e4245 // "EBNN"
	modelVersion = 1
)

// WriteTo serializes the model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []uint32{modelMagic, modelVersion, uint32(m.F)}
	for _, h := range hdr {
		if err := put(h); err != nil {
			return n, err
		}
	}
	if err := put(m.Filters); err != nil {
		return n, err
	}
	for _, bn := range m.BN {
		if err := put([]float32{bn.W0, bn.W1, bn.W2, bn.W3, bn.W4}); err != nil {
			return n, err
		}
	}
	for _, row := range m.Weights {
		if err := put(row); err != nil {
			return n, err
		}
	}
	if err := put(m.Bias); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadModel deserializes a model written by WriteTo, validating the
// header and every dimension.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	get := func(v interface{}) error {
		return binary.Read(br, binary.LittleEndian, v)
	}
	var hdr [3]uint32
	if err := get(&hdr); err != nil {
		return nil, fmt.Errorf("ebnn: reading header: %w", err)
	}
	if hdr[0] != modelMagic {
		return nil, fmt.Errorf("ebnn: bad magic %#x", hdr[0])
	}
	if hdr[1] != modelVersion {
		return nil, fmt.Errorf("ebnn: unsupported version %d", hdr[1])
	}
	f := int(hdr[2])
	if f < 1 || f > 16 {
		return nil, fmt.Errorf("ebnn: corrupt filter count %d", f)
	}
	m := &Model{F: f}
	m.Filters = make([]uint16, f)
	if err := get(m.Filters); err != nil {
		return nil, fmt.Errorf("ebnn: reading filters: %w", err)
	}
	for _, filt := range m.Filters {
		if filt >= 1<<9 {
			return nil, fmt.Errorf("ebnn: corrupt filter %#x (more than 9 bits)", filt)
		}
	}
	m.BN = make([]BNParams, f)
	for i := range m.BN {
		var ws [5]float32
		if err := get(&ws); err != nil {
			return nil, fmt.Errorf("ebnn: reading BN %d: %w", i, err)
		}
		for _, w := range ws {
			if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
				return nil, fmt.Errorf("ebnn: corrupt BN parameter in filter %d", i)
			}
		}
		m.BN[i] = BNParams{W0: ws[0], W1: ws[1], W2: ws[2], W3: ws[3], W4: ws[4]}
		if m.BN[i].W2 == 0 {
			return nil, fmt.Errorf("ebnn: filter %d has zero BN scale", i)
		}
	}
	dim := m.FeatureLen()
	m.Weights = make([][]float32, mnist.NumClasses)
	for c := range m.Weights {
		m.Weights[c] = make([]float32, dim)
		if err := get(m.Weights[c]); err != nil {
			return nil, fmt.Errorf("ebnn: reading classifier row %d: %w", c, err)
		}
	}
	m.Bias = make([]float32, mnist.NumClasses)
	if err := get(m.Bias); err != nil {
		return nil, fmt.Errorf("ebnn: reading bias: %w", err)
	}
	// The stream must be fully consumed.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("ebnn: trailing bytes after model")
	}
	return m, nil
}

package ebnn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

// DPU-side layout constants (§4.1.3 mapping).
const (
	// BatchSize is the number of images per DPU: 16, because a 16-image
	// batch of packed images fills the 2048-byte DMA transfer limit.
	BatchSize = 16
	// ResultSize is the per-image result buffer in MRAM: one byte per
	// pooled cell (bit f = filter f's activation), 169 bytes padded to
	// the 8-byte granularity.
	ResultSize = (PoolCells + 7) / 8 * 8 // 176
)

// Symbol names used by the eBNN DPU program.
const (
	symImages  = "ebnn_images"
	symResults = "ebnn_results"
	symNImages = "ebnn_nimages"
	symFilters = "ebnn_filters"
	symBN      = "ebnn_bn"
	symLUT     = "ebnn_lut_mram"
	symScratch = "ebnn_scratch"
)

// kernelLayout carries the resolved symbol offsets into the kernel.
type kernelLayout struct {
	f       int
	useLUT  bool
	images  int64 // MRAM
	results int64 // MRAM
	lutMRAM int64 // MRAM (LUT model)
	nimages int64 // WRAM
	filters int64 // WRAM
	bn      int64 // WRAM (default model)
	scratch int64 // WRAM: per-tasklet image buffer + result buffer + LUT area
}

// perTaskletScratch is the WRAM each tasklet owns privately.
const perTaskletScratch = mnist.PackedSize + ResultSize // 304

// lutWRAMSize is the WRAM area holding the LUT after the MRAM->WRAM copy.
const lutWRAMSize = (LUTRows*DefaultFilters + 7) / 8 * 8 // 152

// Runner executes eBNN inference on a DPU system using the
// multiple-images-per-DPU mapping of §4.1.3.
type Runner struct {
	sys      *host.System
	model    *Model
	useLUT   bool
	tasklets int
	layout   kernelLayout

	// kernelFn is the kernel closure, built once at NewRunner and reused
	// for every launch.
	kernelFn dpu.KernelFunc

	// Resolved symbol handles for the per-wave transfer loops.
	refImages, refNImages, refResults host.SymbolRef

	// Host-side staging reused across waves and Infer calls; Infer is
	// not safe for concurrent use on one Runner (the DPU symbols are
	// shared state), so plain fields suffice.
	imgStage []byte   // flat backing for imgBufs
	cntStage []byte   // flat backing for cntBufs
	imgBufs  [][]byte // per-DPU image batch views
	cntBufs  [][]byte // per-DPU image count views
	counts   []int
	resStage []byte // wave-wide result gather buffer (sync path)
	featBuf  []byte // decoded feature vector for one image

	// pipe selects the double-buffered wave pipeline; slots are its two
	// ping-pong staging sets (allocated on first pipelined Infer).
	pipe  bool
	slots [2]inferSlot

	// Fault-recovery state (fault.go): DPUs excluded from dispatch, the
	// round-robin re-dispatch cursor, and the reusable per-wave
	// failed-batch set.
	down     []bool
	nDown    int
	retryCur int
	failSet  []bool
}

// inferSlot is one of the two ping-pong staging sets of the pipelined
// Infer: a wave's image/count scatter buffers and result gather buffers
// stay queue-owned until the wave's Pending resolves, so the host packs
// the next wave (and classifies the previous one) in the other slot.
type inferSlot struct {
	imgStage []byte
	cntStage []byte
	resStage []byte
	imgBufs  [][]byte
	cntBufs  [][]byte
	resBufs  [][]byte
	counts   []int
	stats    host.LaunchStats
	pend     host.Pending
	cntPend  host.Pending // the wave's image-count push
	nDPU     int
	busy     bool
}

// NewRunner deploys the model onto every DPU of the system: it allocates
// the MRAM/WRAM symbols and broadcasts the filters plus either the BN
// parameters (default model, Fig 4.2a) or the host-built LUT (Fig 4.2b).
func NewRunner(sys *host.System, m *Model, useLUT bool, tasklets int) (*Runner, error) {
	if m.F < 1 || m.F > 8 {
		return nil, fmt.Errorf("ebnn: runner requires 1..8 filters (one result byte per cell), got %d", m.F)
	}
	if tasklets < 1 || tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("ebnn: tasklet count %d outside 1..%d", tasklets, dpu.MaxTasklets)
	}
	r := &Runner{sys: sys, model: m, useLUT: useLUT, tasklets: tasklets}

	alloc := []struct {
		name string
		size int64
		wram bool
	}{
		{symImages, BatchSize * mnist.PackedSize, false},
		{symResults, BatchSize * ResultSize, false},
		{symLUT, lutWRAMSize, false},
		{symNImages, 8, true},
		{symFilters, 16, true},
		{symBN, int64(m.F) * 5 * 4, true},
		{symScratch, dpu.MaxTasklets*perTaskletScratch + lutWRAMSize, true},
	}
	for _, a := range alloc {
		var err error
		if a.wram {
			err = sys.AllocWRAM(a.name, a.size)
		} else {
			err = sys.AllocMRAM(a.name, a.size)
		}
		if err != nil {
			return nil, fmt.Errorf("ebnn: %w", err)
		}
	}
	look := func(name string) int64 {
		s, _ := sys.DPU(0).Symbol(name)
		return s.Offset
	}
	r.layout = kernelLayout{
		f:       m.F,
		useLUT:  useLUT,
		images:  look(symImages),
		results: look(symResults),
		lutMRAM: look(symLUT),
		nimages: look(symNImages),
		filters: look(symFilters),
		bn:      look(symBN),
		scratch: look(symScratch),
	}

	// Broadcast the model parameters. A DPU that misses a broadcast gets
	// it redelivered; one that cannot be reached is marked down so its
	// stale model never contributes predictions (fault.go).
	r.ensureFaultState()
	broadcast := func(sym string, data []byte) error {
		ref, err := sys.Resolve(sym)
		if err != nil {
			return err
		}
		return r.handleBroadcast(sys.CopyToSymbolRef(ref, 0, data), ref, data)
	}
	filt := make([]byte, 16)
	for i, f := range m.Filters {
		binary.LittleEndian.PutUint16(filt[i*2:], f)
	}
	if err := broadcast(symFilters, filt); err != nil {
		return nil, err
	}
	if useLUT {
		lut, _ := host.Pad8(m.BuildLUT())
		if err := broadcast(symLUT, lut); err != nil {
			return nil, err
		}
	} else {
		bn := make([]byte, m.F*5*4)
		for i, p := range m.BN {
			for j, w := range []float32{p.W0, p.W1, p.W2, p.W3, p.W4} {
				binary.LittleEndian.PutUint32(bn[(i*5+j)*4:], math.Float32bits(w))
			}
		}
		if err := broadcast(symBN, bn); err != nil {
			return nil, err
		}
	}

	for _, ref := range []struct {
		name string
		dst  *host.SymbolRef
	}{
		{symImages, &r.refImages}, {symNImages, &r.refNImages}, {symResults, &r.refResults},
	} {
		res, err := sys.Resolve(ref.name)
		if err != nil {
			return nil, fmt.Errorf("ebnn: %w", err)
		}
		*ref.dst = res
	}

	nd := sys.NumDPUs()
	r.imgStage = make([]byte, nd*BatchSize*mnist.PackedSize)
	r.cntStage = make([]byte, nd*4)
	r.imgBufs = make([][]byte, nd)
	r.cntBufs = make([][]byte, nd)
	for i := 0; i < nd; i++ {
		r.imgBufs[i] = r.imgStage[i*BatchSize*mnist.PackedSize : (i+1)*BatchSize*mnist.PackedSize]
		r.cntBufs[i] = r.cntStage[i*4 : (i+1)*4]
	}
	r.counts = make([]int, nd)
	r.resStage = make([]byte, nd*BatchSize*ResultSize)
	r.featBuf = make([]byte, PoolCells*m.F)
	r.kernelFn = r.kernel()
	r.pipe = host.PipelineAuto.Enabled()
	return r, nil
}

// SetPipeline overrides the runner's pipelining mode (PipelineAuto is
// resolved at NewRunner). Call it between Infer calls only. Results and
// simulated-time accounting are identical in both modes; pipelining
// overlaps host pack/classify wall-clock time with queued device work.
func (r *Runner) SetPipeline(m host.PipelineMode) {
	r.pipe = m.Enabled()
}

// Model returns the deployed model.
func (r *Runner) Model() *Model { return r.model }

// Tasklets returns the configured tasklet count.
func (r *Runner) Tasklets() int { return r.tasklets }

// kernel builds the DPU program. Each tasklet processes images
// tid, tid+T, tid+2T, ... of the batch (thread-level parallelism of
// §4.3.1); per image it DMAs the packed pixels from MRAM, runs the binary
// convolution + max-pool, applies BN-BinAct either in software floating
// point (default) or via the WRAM LUT, and DMAs the activation bytes back
// to MRAM.
func (r *Runner) kernel() dpu.KernelFunc {
	l := r.layout
	return func(t *dpu.Tasklet) error {
		nf := l.f
		lutWRAM := l.scratch + dpu.MaxTasklets*perTaskletScratch

		// Tasklet 0 stages the LUT into WRAM before anyone indexes it
		// (§4.1.4: "the DPU copies it from MRAM to WRAM before
		// accessing it"). Tasklets run in ID order in the simulator,
		// standing in for the barrier a hardware program would use.
		if l.useLUT && t.ID() == 0 {
			t.MRAMToWRAM(lutWRAM, l.lutMRAM, lutWRAMSize)
		}

		n := int(t.LoadI32(l.nimages))
		if n < 0 || n > BatchSize {
			return fmt.Errorf("ebnn kernel: bad image count %d", n)
		}

		// Load filters and pre-slice each into its three rows. nf <= 8
		// is enforced by NewRunner, so fixed-size stack arrays avoid
		// per-launch heap allocation.
		type filtRows struct{ f0, f1, f2 uint32 }
		var filters [8]filtRows
		for f := 0; f < nf; f++ {
			w := uint32(uint16(t.Load16(l.filters + int64(f)*2)))
			filters[f] = filtRows{
				f0: t.And32(w, 7),
				f1: t.And32(uint32(t.Shr32(int32(w), 3)), 7),
				f2: t.And32(uint32(t.Shr32(int32(w), 6)), 7),
			}
		}

		// Default model: fold the BN-BinAct block into a float threshold
		// per filter, in DPU software floating point (Fig 4.2a).
		var thresholds [8]uint32
		if !l.useLUT {
			for f := 0; f < nf; f++ {
				base := l.bn + int64(f)*5*4
				w0 := t.Load32(base)
				w1 := t.Load32(base + 4)
				w2 := t.Load32(base + 8)
				w3 := t.Load32(base + 12)
				w4 := t.Load32(base + 16)
				scale := t.FDiv(w3, w2)
				diff := t.FSub(w1, w0)
				corr := t.FDiv(w4, scale)
				thresholds[f] = t.FSub(diff, corr)
			}
		}

		imgBuf := l.scratch + int64(t.ID())*perTaskletScratch
		outBuf := imgBuf + mnist.PackedSize

		T := t.Count()
		for img := t.ID(); img < n; img += T {
			// Fetch the packed image. The MRAM offset is computed with a
			// 16-bit multiply — the __mulsi3 call Fig 4.3(b) shows
			// surviving the LUT rewrite ("tied to a dependent part of
			// the program").
			off := t.Mul16(int16(img), mnist.PackedSize)
			t.MRAMToWRAM(imgBuf, l.images+int64(off), mnist.PackedSize)

			var rows [mnist.Side]uint32
			for row := 0; row < mnist.Side; row++ {
				rows[row] = t.Load32(imgBuf + int64(row)*4)
			}

			for pr := 0; pr < PoolSize; pr++ {
				for pc := 0; pc < PoolSize; pc++ {
					var acc uint32
					for f := 0; f < nf; f++ {
						fr := filters[f]
						best := int32(math.MinInt32)
						for dr := 0; dr < 2; dr++ {
							row := pr*2 + dr
							r0, r1, r2 := rows[row], rows[row+1], rows[row+2]
							for dc := 0; dc < 2; dc++ {
								c := uint(pc*2 + dc)
								w0 := t.And32(uint32(t.Shr32(int32(r0), c)), 7)
								w1 := t.And32(uint32(t.Shr32(int32(r1), c)), 7)
								w2 := t.And32(uint32(t.Shr32(int32(r2), c)), 7)
								x := t.Or32(t.Or32(t.Xor32(w0, fr.f0),
									uint32(t.Shl32(int32(t.Xor32(w1, fr.f1)), 3))),
									uint32(t.Shl32(int32(t.Xor32(w2, fr.f2)), 6)))
								v := t.Sub32(9, t.Shl32(t.Popcount32(x), 1))
								t.Charge(dpu.OpBranch, 1) // max compare
								if v > best {
									best = v
								}
							}
						}
						var bit uint32
						if l.useLUT {
							// LUT path: integer index, WRAM load.
							idx := t.Add32(best, -ConvMin)
							idx = t.Mul16(int16(idx), int16(nf))
							idx = t.Add32(idx, int32(f))
							bit = uint32(t.Load8(lutWRAM+int64(idx))) & 1
						} else {
							// Float path: convert and compare.
							vf := t.FFromInt(best)
							if t.FGe(vf, thresholds[f]) {
								bit = 1
							}
						}
						acc = t.Or32(acc, uint32(t.Shl32(int32(bit), uint(f))))
					}
					cell := int64(pr*PoolSize + pc)
					t.Store8(outBuf+cell, int8(acc))
				}
			}
			roff := t.Mul16(int16(img), ResultSize)
			t.WRAMToMRAM(l.results+int64(roff), outBuf, ResultSize)
		}
		return nil
	}
}

// BatchStats reports one inference run.
type BatchStats struct {
	// Images is the number of images inferred.
	Images int
	// Waves is the number of sequential launches needed (images beyond
	// 16×NumDPUs queue into later waves).
	Waves int
	// DPUSeconds is the summed parallel DPU time over all waves.
	DPUSeconds float64
	// DPUsUsed is the largest number of DPUs active in any wave.
	DPUsUsed int
	// Cycles is the summed per-wave maximum DPU cycles.
	Cycles uint64
	// Retries is the number of 16-image batches re-dispatched onto a
	// surviving DPU after a fault. Zero in a fault-free run.
	Retries int
}

// Throughput returns images per second of DPU time.
func (s BatchStats) Throughput() float64 {
	if s.DPUSeconds == 0 {
		return 0
	}
	return float64(s.Images) / s.DPUSeconds
}

// waveEnd returns the smaller of a and b (the end of the current wave).
func waveEnd(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Infer classifies the images: the host scatters 16-image batches across
// the DPUs, launches the kernel, gathers the activation buffers, and runs
// the softmax layer serially per image (§4.1.3). In pipelined mode the
// waves flow through the host's asynchronous command queue so the
// pack/classify host work overlaps the simulated launches; predictions,
// cycle counts, and wave statistics are identical either way.
func (r *Runner) Infer(images []mnist.Image) ([]int, BatchStats, error) {
	if len(images) == 0 {
		return nil, BatchStats{}, fmt.Errorf("ebnn: no images")
	}
	r.ensureFaultState()
	if r.pipe {
		return r.inferPipelined(images)
	}
	preds := make([]int, 0, len(images))
	stats := BatchStats{Images: len(images)}
	perWave := BatchSize * r.sys.NumDPUs()

	for start := 0; start < len(images); start += perWave {
		wave := images[start:waveEnd(start+perWave, len(images))]
		nDPU := (len(wave) + BatchSize - 1) / BatchSize
		// The staging buffers live on the runner and are reused across
		// waves; only the counts need resetting (stale image bytes in
		// unused slots are never read by the kernel).
		counts := r.counts[:nDPU]
		for i := range counts {
			counts[i] = 0
		}
		for i := range r.cntStage {
			r.cntStage[i] = 0
		}
		for i, img := range wave {
			d := i / BatchSize
			slot := i % BatchSize
			packed := img.Pack()
			copy(r.imgBufs[d][slot*mnist.PackedSize:], packed[:])
			counts[d]++
		}
		for d, c := range counts {
			binary.LittleEndian.PutUint32(r.cntBufs[d], uint32(c))
		}
		// Down DPUs hold a stale model: their batches are re-dispatched
		// even when no operation reports an error for them.
		failed := r.failSet[:nDPU]
		for d := range failed {
			failed[d] = r.down[d]
		}
		if err := r.mergeFailed(failed, r.sys.PushXferRef(r.refImages, 0, r.imgBufs)); err != nil {
			return nil, stats, err
		}
		if err := r.mergeFailed(failed, r.sys.PushXferRef(r.refNImages, 0, r.cntBufs)); err != nil {
			return nil, stats, err
		}

		ls, lerr := r.sys.LaunchOn(nDPU, r.tasklets, r.kernelFn)
		if err := r.mergeFailed(failed, lerr); err != nil {
			return nil, stats, err
		}
		stats.Waves++
		stats.DPUSeconds += ls.Seconds
		stats.Cycles += ls.Cycles
		if nDPU > stats.DPUsUsed {
			stats.DPUsUsed = nDPU
		}

		// Gather serially, DPU by DPU (§4.1.3: "After all temporary
		// results for all images in a single DPU are inferred, the next
		// DPU's result is read"). Intact batches are gathered before any
		// re-dispatch runs, so a retry launch can safely reuse a DPU
		// whose own results were not yet read; classification follows in
		// input order once every batch's results are in.
		rawFor := func(d int) []byte {
			return r.resStage[d*BatchSize*ResultSize : d*BatchSize*ResultSize+counts[d]*ResultSize]
		}
		for d := 0; d < nDPU; d++ {
			if failed[d] {
				continue
			}
			if err := r.sys.CopyFromDPURefInto(d, r.refResults, 0, rawFor(d)); err != nil {
				if _, ok := host.AsFaultReport(err); !ok {
					return nil, stats, err
				}
				if errors.Is(err, dpu.ErrDPUDead) {
					r.markDown(d)
				}
				failed[d] = true
			}
		}
		for d := 0; d < nDPU; d++ {
			if failed[d] {
				if err := r.redispatchBatch(r.imgBufs[d], r.cntBufs[d], rawFor(d), &stats); err != nil {
					return nil, stats, err
				}
			}
		}
		for d := 0; d < nDPU; d++ {
			raw := rawFor(d)
			for slot := 0; slot < counts[d]; slot++ {
				DecodeFeaturesInto(r.featBuf, raw[slot*ResultSize:(slot+1)*ResultSize], r.model.F)
				preds = append(preds, r.model.PredictFeatures(r.featBuf))
			}
		}
	}
	return preds, stats, nil
}

// ensureSlots sizes the two ping-pong staging sets for waves of up to nd
// DPUs.
func (r *Runner) ensureSlots(nd int) {
	if len(r.slots[0].imgBufs) == nd {
		return
	}
	for s := range r.slots {
		sl := &r.slots[s]
		sl.imgStage = make([]byte, nd*BatchSize*mnist.PackedSize)
		sl.cntStage = make([]byte, nd*4)
		sl.resStage = make([]byte, nd*BatchSize*ResultSize)
		sl.imgBufs = make([][]byte, nd)
		sl.cntBufs = make([][]byte, nd)
		sl.resBufs = make([][]byte, nd)
		sl.counts = make([]int, nd)
		for i := 0; i < nd; i++ {
			sl.imgBufs[i] = sl.imgStage[i*BatchSize*mnist.PackedSize : (i+1)*BatchSize*mnist.PackedSize]
			sl.cntBufs[i] = sl.cntStage[i*4 : (i+1)*4]
		}
	}
}

// inferPipelined is the double-buffered wave loop: the image scatter,
// launch, and result gather of wave w are enqueued as one fused command
// and wave w-1's results are classified (softmax on the host) while it
// runs. Waves are flushed strictly in order, so predictions keep the
// input order.
func (r *Runner) inferPipelined(images []mnist.Image) ([]int, BatchStats, error) {
	preds := make([]int, 0, len(images))
	stats := BatchStats{Images: len(images)}
	nd := r.sys.NumDPUs()
	perWave := BatchSize * nd
	r.ensureSlots(nd)

	flush := func(sl *inferSlot) error {
		if !sl.busy {
			return nil
		}
		sl.busy = false
		cntErr := sl.cntPend.Wait()
		waveErr := sl.pend.Wait()
		failed := r.failSet[:sl.nDPU]
		for d := range failed {
			failed[d] = r.down[d]
		}
		if err := r.mergeFailed(failed, cntErr); err != nil {
			r.sys.Sync() // drain the queue before reporting a fatal error
			return err
		}
		if err := r.mergeFailed(failed, waveErr); err != nil {
			r.sys.Sync()
			return err
		}
		stats.Waves++
		stats.DPUSeconds += sl.stats.Seconds
		stats.Cycles += sl.stats.Cycles
		if sl.nDPU > stats.DPUsUsed {
			stats.DPUsUsed = sl.nDPU
		}
		// Re-dispatch failed batches through the queue (serialized behind
		// the already-enqueued next wave, whose fused gather runs before
		// the retry overwrites any of its DPUs' symbols), then classify
		// the whole wave in input order.
		for d := 0; d < sl.nDPU; d++ {
			if failed[d] {
				if err := r.redispatchBatch(sl.imgBufs[d], sl.cntBufs[d], sl.resBufs[d], &stats); err != nil {
					r.sys.Sync()
					return err
				}
			}
		}
		for d := 0; d < sl.nDPU; d++ {
			raw := sl.resBufs[d]
			for slot := 0; slot < sl.counts[d]; slot++ {
				DecodeFeaturesInto(r.featBuf, raw[slot*ResultSize:(slot+1)*ResultSize], r.model.F)
				preds = append(preds, r.model.PredictFeatures(r.featBuf))
			}
		}
		return nil
	}

	w := 0
	for start := 0; start < len(images); start += perWave {
		wave := images[start:waveEnd(start+perWave, len(images))]
		nDPU := (len(wave) + BatchSize - 1) / BatchSize
		sl := &r.slots[w&1]
		// The slot's buffers are queue-owned until its wave completes;
		// classify it before re-packing into them.
		if err := flush(sl); err != nil {
			return nil, stats, err
		}
		counts := sl.counts[:nd]
		for i := range counts {
			counts[i] = 0
		}
		for i := range sl.cntStage {
			sl.cntStage[i] = 0
		}
		for i, img := range wave {
			d := i / BatchSize
			slot := i % BatchSize
			packed := img.Pack()
			copy(sl.imgBufs[d][slot*mnist.PackedSize:], packed[:])
			counts[d]++
		}
		for d, c := range counts {
			binary.LittleEndian.PutUint32(sl.cntBufs[d], uint32(c))
		}
		// The gather length is uniform across the wave's DPUs: images
		// fill DPUs in order, so DPU 0 always holds the largest count.
		resLen := counts[0] * ResultSize
		for d := 0; d < nDPU; d++ {
			sl.resBufs[d] = sl.resStage[d*BatchSize*ResultSize : d*BatchSize*ResultSize+resLen]
		}
		sl.cntPend = r.sys.EnqueuePushXfer(r.refNImages, 0, sl.cntBufs)
		sl.pend = r.sys.EnqueueWave(host.Wave{
			DPUs:     nDPU,
			Tasklets: r.tasklets,
			Kernel:   r.kernelFn,
			Stats:    &sl.stats,
			Scatter:  r.refImages,
			In:       sl.imgBufs[:nDPU],
			Gather:   r.refResults,
			Out:      sl.resBufs[:nDPU],
		})
		sl.nDPU = nDPU
		sl.busy = true
		w++
	}
	// Drain the in-flight waves, older slot first (prediction order).
	if err := flush(&r.slots[w&1]); err != nil {
		return nil, stats, err
	}
	if err := flush(&r.slots[(w+1)&1]); err != nil {
		return nil, stats, err
	}
	return preds, stats, nil
}

// DecodeFeatures expands one DPU result buffer (one byte per pooled cell,
// bit f = filter f) into the flat feature vector layout of
// Model.Features.
func DecodeFeatures(result []byte, nf int) []byte {
	out := make([]byte, PoolCells*nf)
	DecodeFeaturesInto(out, result, nf)
	return out
}

// DecodeFeaturesInto is DecodeFeatures writing into a caller-provided
// buffer of at least PoolCells*nf bytes, so batch-inference loops can
// reuse one feature vector across images.
func DecodeFeaturesInto(out, result []byte, nf int) {
	for cell := 0; cell < PoolCells; cell++ {
		b := result[cell]
		for f := 0; f < nf; f++ {
			out[cell*nf+f] = (b >> uint(f)) & 1
		}
	}
}

package ebnn

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"pimdnn/internal/dpu"
	"pimdnn/internal/exec"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
	"pimdnn/internal/softfloat"
	"pimdnn/internal/trace"
)

// DPU-side layout constants (§4.1.3 mapping).
const (
	// BatchSize is the number of images per DPU: 16, because a 16-image
	// batch of packed images fills the 2048-byte DMA transfer limit.
	BatchSize = 16
	// ResultSize is the per-image result buffer in MRAM: one byte per
	// pooled cell (bit f = filter f's activation), 169 bytes padded to
	// the 8-byte granularity.
	ResultSize = (PoolCells + 7) / 8 * 8 // 176
)

// Symbol names used by the eBNN DPU program.
const (
	symImages  = "ebnn_images"
	symResults = "ebnn_results"
	symNImages = "ebnn_nimages"
	symFilters = "ebnn_filters"
	symBN      = "ebnn_bn"
	symLUT     = "ebnn_lut_mram"
	symScratch = "ebnn_scratch"
)

// kernelLayout carries the resolved symbol offsets into the kernel.
type kernelLayout struct {
	f       int
	useLUT  bool
	images  int64 // MRAM
	results int64 // MRAM
	lutMRAM int64 // MRAM (LUT model)
	nimages int64 // WRAM
	filters int64 // WRAM
	bn      int64 // WRAM (default model)
	scratch int64 // WRAM: per-tasklet image buffer + result buffer + LUT area
}

// perTaskletScratch is the WRAM each tasklet owns privately.
const perTaskletScratch = mnist.PackedSize + ResultSize // 304

// lutWRAMSize is the WRAM area holding the LUT after the MRAM->WRAM copy.
const lutWRAMSize = (LUTRows*DefaultFilters + 7) / 8 * 8 // 152

// Runner executes eBNN inference on a DPU system using the
// multiple-images-per-DPU mapping of §4.1.3.
type Runner struct {
	sys      *host.System
	model    *Model
	useLUT   bool
	tasklets int
	layout   kernelLayout

	// kernelFn is the kernel closure, built once at NewRunner and reused
	// for every launch.
	kernelFn dpu.KernelFunc

	// legacy selects the per-op charging kernel (kernelLegacy) instead of
	// the block-charged one; the differential tests flip it to prove the
	// two produce identical cycle counts, profiles, and outputs.
	legacy bool

	// preBlock/imgBlock are the precomputed per-tasklet preamble and
	// per-image cost of the block-charged kernel (see ebnnBlocks).
	preBlock, imgBlock *dpu.CostBlock

	// launchScratch pools the per-launch decoded model state; one entry
	// is live per concurrently launching DPU.
	launchScratch sync.Pool

	// Resolved symbol handles for the per-wave transfer loops.
	refImages, refNImages, refResults host.SymbolRef

	// featBuf is the decoded feature vector for one image, reused across
	// the per-image softmax loop; Infer is not safe for concurrent use
	// on one Runner (the DPU symbols are shared state).
	featBuf []byte

	// eng is the shared execution engine: it owns wave construction,
	// double-buffered pipelining, and retry-and-remap (internal/exec).
	// iws and stages are the WorkSet adapter and its staging sets
	// (stage 0 for synchronous dispatch, both when pipelined).
	eng    *exec.Engine
	iws    inferWorkSet
	stages [2]inferStage

	// deploy retains the model payloads broadcast at NewRunner so
	// AttachResidency can register them with a weight cache; resBcasts
	// is the resident broadcast set each Infer then re-presents to the
	// engine (zero transfer bytes while every live DPU stays current).
	deploy    []deployPayload
	resBcasts []exec.Broadcast
}

// deployPayload is one model parameter broadcast kept for residency.
type deployPayload struct {
	ref  host.SymbolRef
	data []byte
}

// inferStage is one staging set of the multiple-images-per-DPU mapping:
// per-DPU packed-image and image-count scatter buffers plus result
// gather views. A pipelined wave's buffers stay queue-owned until the
// engine flushes it, so the host packs the next wave into the other
// stage meanwhile.
type inferStage struct {
	imgStage []byte
	cntStage []byte
	resStage []byte
	imgBufs  [][]byte
	cntBufs  [][]byte
	resBufs  [][]byte
	counts   []int
}

// NewRunner deploys the model onto every DPU of the system: it allocates
// the MRAM/WRAM symbols and broadcasts the filters plus either the BN
// parameters (default model, Fig 4.2a) or the host-built LUT (Fig 4.2b).
func NewRunner(sys *host.System, m *Model, useLUT bool, tasklets int) (*Runner, error) {
	if m.F < 1 || m.F > 8 {
		return nil, fmt.Errorf("ebnn: runner requires 1..8 filters (one result byte per cell), got %d", m.F)
	}
	if tasklets < 1 || tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("ebnn: tasklet count %d outside 1..%d", tasklets, dpu.MaxTasklets)
	}
	r := &Runner{sys: sys, model: m, useLUT: useLUT, tasklets: tasklets}

	alloc := []struct {
		name string
		size int64
		wram bool
	}{
		{symImages, BatchSize * mnist.PackedSize, false},
		{symResults, BatchSize * ResultSize, false},
		{symLUT, lutWRAMSize, false},
		{symNImages, 8, true},
		{symFilters, 16, true},
		{symBN, int64(m.F) * 5 * 4, true},
		{symScratch, dpu.MaxTasklets*perTaskletScratch + lutWRAMSize, true},
	}
	for _, a := range alloc {
		var err error
		if a.wram {
			err = sys.AllocWRAM(a.name, a.size)
		} else {
			err = sys.AllocMRAM(a.name, a.size)
		}
		if err != nil {
			return nil, fmt.Errorf("ebnn: %w", err)
		}
	}
	look := func(name string) int64 {
		s, _ := sys.DPU(0).Symbol(name)
		return s.Offset
	}
	r.layout = kernelLayout{
		f:       m.F,
		useLUT:  useLUT,
		images:  look(symImages),
		results: look(symResults),
		lutMRAM: look(symLUT),
		nimages: look(symNImages),
		filters: look(symFilters),
		bn:      look(symBN),
		scratch: look(symScratch),
	}

	// Broadcast the model parameters through the execution engine: a DPU
	// that misses a broadcast gets it redelivered; one that cannot be
	// reached is marked down so its stale model never contributes
	// predictions (internal/exec). The engine starts unpipelined so the
	// deploy-time redeliveries stay synchronous.
	r.eng = exec.New(sys, exec.Config{Pipeline: host.PipelineOff})
	r.iws.r = r
	broadcast := func(sym string, data []byte) error {
		ref, err := sys.Resolve(sym)
		if err != nil {
			return err
		}
		r.deploy = append(r.deploy, deployPayload{ref: ref, data: data})
		return r.eng.Broadcast(exec.Broadcast{Ref: ref, Data: data})
	}
	filt := make([]byte, 16)
	for i, f := range m.Filters {
		binary.LittleEndian.PutUint16(filt[i*2:], f)
	}
	if err := broadcast(symFilters, filt); err != nil {
		return nil, err
	}
	if useLUT {
		lut, _ := host.Pad8(m.BuildLUT())
		if err := broadcast(symLUT, lut); err != nil {
			return nil, err
		}
	} else {
		bn := make([]byte, m.F*5*4)
		for i, p := range m.BN {
			for j, w := range []float32{p.W0, p.W1, p.W2, p.W3, p.W4} {
				binary.LittleEndian.PutUint32(bn[(i*5+j)*4:], math.Float32bits(w))
			}
		}
		if err := broadcast(symBN, bn); err != nil {
			return nil, err
		}
	}

	for _, ref := range []struct {
		name string
		dst  *host.SymbolRef
	}{
		{symImages, &r.refImages}, {symNImages, &r.refNImages}, {symResults, &r.refResults},
	} {
		res, err := sys.Resolve(ref.name)
		if err != nil {
			return nil, fmt.Errorf("ebnn: %w", err)
		}
		*ref.dst = res
	}

	r.stages[0].ensure(sys.NumDPUs())
	r.featBuf = make([]byte, PoolCells*m.F)
	r.preBlock, r.imgBlock = ebnnBlocks(m.F, useLUT)
	r.launchScratch.New = func() interface{} { return new(ebnnScratch) }
	r.kernelFn = r.kernel()
	r.eng.Configure(exec.Config{Pipeline: host.PipelineAuto})
	return r, nil
}

// Configure re-applies the unified execution-engine configuration
// (pipelining, trace timeline; see internal/exec and DESIGN.md,
// "Execution engine"). Call it between Infer calls only. Results and
// simulated-time accounting are identical in both pipeline modes;
// pipelining overlaps host pack/classify wall-clock time with queued
// device work.
func (r *Runner) Configure(ec exec.Config) {
	r.eng.Configure(ec)
}

// SetPipeline overrides the runner's pipelining mode (PipelineAuto is
// resolved at NewRunner). Call it between Infer calls only.
//
// Deprecated: use Configure with an exec.Config — the unified dispatch
// configuration shared by every runner. This shim forwards to it.
func (r *Runner) SetPipeline(m host.PipelineMode) {
	r.Configure(exec.Config{Pipeline: m})
}

// SetScope names the workload phase the next Infer calls belong to for
// telemetry decomposition (see exec.Engine.SetScope). A plain field
// store when no metrics registry is wired.
func (r *Runner) SetScope(name string) { r.eng.SetScope(name) }

// SetTraceSpan attaches the request span the next Infer runs under
// (see exec.Engine.SetTraceSpan); nil detaches. Each Infer opens an
// "ebnn.infer" child span carrying the engine's wave and per-DPU
// kernel spans.
func (r *Runner) SetTraceSpan(sp *trace.Span) { r.eng.SetTraceSpan(sp) }

// TraceSpan returns the currently attached request span (nil when
// untraced).
func (r *Runner) TraceSpan() *trace.Span { return r.eng.TraceSpan() }

// AttachResidency registers the deployed model parameters (filters plus
// BN table or LUT) with a weight cache under the given model name, as
// external entries: they stay in their own symbols and consume no arena
// bytes, but join the cache's LRU bookkeeping and per-DPU generation
// stamps. Every subsequent Infer re-presents them to the engine — a
// no-op while all live DPUs hold the current copy, a targeted catch-up
// when a DPU was remapped onto or the model was evicted. The initial
// delivery here stamps every reachable DPU (the payloads were already
// broadcast at NewRunner, but stamping must go through the cache).
func (r *Runner) AttachResidency(cache *exec.WeightCache, name string) error {
	m := cache.Model(name)
	r.resBcasts = r.resBcasts[:0]
	for i, d := range r.deploy {
		ent := m.External(i, d.ref, 0, int64(len(d.data)))
		r.resBcasts = append(r.resBcasts, exec.Broadcast{Ref: d.ref, Data: d.data, Resident: ent})
	}
	for _, b := range r.resBcasts {
		if err := r.eng.Broadcast(b); err != nil {
			return err
		}
	}
	return nil
}

// MetricsOn reports whether the underlying System has a metrics
// registry wired.
func (r *Runner) MetricsOn() bool { return r.eng.MetricsOn() }

// Model returns the deployed model.
func (r *Runner) Model() *Model { return r.model }

// Tasklets returns the configured tasklet count.
func (r *Runner) Tasklets() int { return r.tasklets }

// SetLegacyCharging switches between the block-charged kernel (default)
// and the per-op charging form it replaced. Both account for the same
// operations — the differential tests launch each and assert identical
// cycle counts, instruction mixes, subroutine profiles and result bytes.
// Call it between Infer calls only.
func (r *Runner) SetLegacyCharging(v bool) {
	r.legacy = v
	if v {
		r.kernelFn = r.kernelLegacy()
	} else {
		r.kernelFn = r.kernel()
	}
}

// filtRows is one 3×3 binary filter pre-sliced into its three rows.
type filtRows struct{ f0, f1, f2 uint32 }

// ebnnScratch is the model state the block-charged kernel decodes once
// per launch: tasklet 0 fills it and publishes it through the
// launch-local slot; the other tasklets (which run serially after it)
// read it instead of re-deriving the same values, while still charging
// the preamble block so the cycle accounting matches the legacy kernel's
// per-tasklet recomputation.
type ebnnScratch struct {
	n          int
	filters    [8]filtRows
	thresholds [8]uint32
}

// ebnnBlocks precomputes the per-tasklet preamble cost and the per-image
// cost of the §4.1.3 kernel for a filter count and activation mode. The
// operation counts mirror kernelLegacy statement by statement — the
// differential tests enforce the equivalence. The two real DMA transfers
// per image (packed pixels in, activation bytes out) are excluded: the
// block kernel still issues them through the DMA engine.
func ebnnBlocks(nf int, useLUT bool) (pre, img *dpu.CostBlock) {
	fn := uint64(nf)
	pre = dpu.NewCostBlock().
		AddOp(dpu.OpLoad, 1+fn).  // image count + filter words
		AddOp(dpu.OpLogic, 3*fn). // filter row masks
		AddOp(dpu.OpShift, 2*fn)  // filter row extraction
	if !useLUT {
		pre.AddOp(dpu.OpLoad, 5*fn). // BN parameters
						AddOp(dpu.OpFDiv, 2*fn). // scale, correction
						AddOp(dpu.OpFSub, 2*fn)  // difference, threshold
	}
	cells := uint64(PoolCells)
	img = dpu.NewCostBlock().
		AddOp(dpu.OpMul16, 2).         // image and result MRAM offsets
		AddOp(dpu.OpLoad, mnist.Side). // row fetch into registers
		// Per pooled cell and filter: 4 conv windows of 6 shifts and
		// 9 logic ops each, plus the activation-bit accumulate.
		AddOp(dpu.OpShift, cells*fn*25).
		AddOp(dpu.OpLogic, cells*fn*37).
		AddOp(dpu.OpSubInt, cells*fn*4).
		AddOp(dpu.OpBranch, cells*fn*4). // max-pool compares
		AddOp(dpu.OpStore, cells)        // result bytes
	if useLUT {
		img.AddOp(dpu.OpAddInt, cells*fn*2).
			AddOp(dpu.OpMul16, cells*fn).
			AddOp(dpu.OpLoad, cells*fn) // LUT index + WRAM load
	} else {
		img.AddOp(dpu.OpFloatFromInt, cells*fn).
			AddOp(dpu.OpFCmp, cells*fn) // threshold compare
	}
	return pre, img
}

// kernel builds the block-charged DPU program: the same per-image work
// as kernelLegacy — packed pixels DMAed in, XNOR-popcount convolution +
// max-pool, BN-BinAct via software float or the WRAM LUT, activations
// DMAed out — computed natively on the host with the cycle cost charged
// through the precomputed blocks. Tasklet 0 decodes the model state
// (filters, batched-softfloat threshold fold) once per launch and shares
// it launch-locally; every tasklet charges the preamble block, matching
// the legacy kernel's per-tasklet recomputation.
func (r *Runner) kernel() dpu.KernelFunc {
	l := r.layout
	nf := l.f
	pre, per := r.preBlock, r.imgBlock
	return func(t *dpu.Tasklet) error {
		lutWRAM := l.scratch + dpu.MaxTasklets*perTaskletScratch

		var sc *ebnnScratch
		if t.ID() == 0 {
			if l.useLUT {
				// Real DMA, charged on tasklet 0 as in the legacy kernel
				// (§4.1.4: the DPU stages the LUT into WRAM first).
				t.MRAMToWRAM(lutWRAM, l.lutMRAM, lutWRAMSize)
			}
			sc = r.launchScratch.Get().(*ebnnScratch)
			sc.n = int(int32(binary.LittleEndian.Uint32(t.WRAMWindow(l.nimages, 4))))
			fw := t.WRAMWindow(l.filters, int64(nf)*2)
			for f := 0; f < nf; f++ {
				w := uint32(binary.LittleEndian.Uint16(fw[f*2:]))
				sc.filters[f] = filtRows{f0: w & 7, f1: (w >> 3) & 7, f2: (w >> 6) & 7}
			}
			if !l.useLUT {
				// Fold BN-BinAct into one threshold per filter, batched
				// across filters: scale = w3/w2, thr = (w1-w0) - w4/scale.
				bw := t.WRAMWindow(l.bn, int64(nf)*5*4)
				var w0, w1, w2, w3, w4, scale, diff [8]uint32
				for f := 0; f < nf; f++ {
					base := f * 5 * 4
					w0[f] = binary.LittleEndian.Uint32(bw[base:])
					w1[f] = binary.LittleEndian.Uint32(bw[base+4:])
					w2[f] = binary.LittleEndian.Uint32(bw[base+8:])
					w3[f] = binary.LittleEndian.Uint32(bw[base+12:])
					w4[f] = binary.LittleEndian.Uint32(bw[base+16:])
				}
				softfloat.DivSlice(scale[:nf], w3[:nf], w2[:nf])
				softfloat.SubSlice(diff[:nf], w1[:nf], w0[:nf])
				softfloat.DivSlice(w4[:nf], w4[:nf], scale[:nf])
				softfloat.SubSlice(sc.thresholds[:nf], diff[:nf], w4[:nf])
			}
			t.SetLaunchLocal(sc)
		} else {
			sc = t.LaunchLocal().(*ebnnScratch)
		}
		if t.ID() == t.Count()-1 {
			defer r.launchScratch.Put(sc)
		}
		t.ChargeBlock(pre)

		n := sc.n
		if n < 0 || n > BatchSize {
			return fmt.Errorf("ebnn kernel: bad image count %d", n)
		}

		imgBuf := l.scratch + int64(t.ID())*perTaskletScratch
		outBuf := imgBuf + mnist.PackedSize
		imgWin := t.WRAMWindow(imgBuf, mnist.PackedSize)
		outWin := t.WRAMWindow(outBuf, ResultSize)
		var lutWin []byte
		if l.useLUT {
			lutWin = t.WRAMWindow(lutWRAM, lutWRAMSize)
		}

		T := t.Count()
		for img := t.ID(); img < n; img += T {
			t.MRAMToWRAM(imgBuf, l.images+int64(img)*mnist.PackedSize, mnist.PackedSize)

			var rows [mnist.Side]uint32
			for row := range rows {
				rows[row] = binary.LittleEndian.Uint32(imgWin[row*4:])
			}

			for pr := 0; pr < PoolSize; pr++ {
				for pc := 0; pc < PoolSize; pc++ {
					var acc uint32
					for f := 0; f < nf; f++ {
						fr := sc.filters[f]
						best := int32(math.MinInt32)
						for dr := 0; dr < 2; dr++ {
							row := pr*2 + dr
							r0, r1, r2 := rows[row], rows[row+1], rows[row+2]
							for dc := 0; dc < 2; dc++ {
								c := uint(pc*2 + dc)
								x := (uint32(int32(r0)>>c)&7 ^ fr.f0) |
									((uint32(int32(r1)>>c)&7 ^ fr.f1) << 3) |
									((uint32(int32(r2)>>c)&7 ^ fr.f2) << 6)
								v := 9 - int32(bits.OnesCount32(x))<<1
								if v > best {
									best = v
								}
							}
						}
						var bit uint32
						if l.useLUT {
							idx := int(best-ConvMin)*nf + f
							bit = uint32(lutWin[idx]) & 1
						} else if softfloat.Ge(softfloat.FromInt32(best), sc.thresholds[f]) {
							bit = 1
						}
						acc |= bit << uint(f)
					}
					outWin[pr*PoolSize+pc] = byte(acc)
				}
			}
			t.WRAMToMRAM(l.results+int64(img)*ResultSize, outBuf, ResultSize)
			t.ChargeBlock(per)
		}
		return nil
	}
}

// kernelLegacy is the per-op charging form of the DPU program, retained
// behind SetLegacyCharging as the reference the differential tests hold
// the block-charged kernel to. Each tasklet processes images
// tid, tid+T, tid+2T, ... of the batch (thread-level parallelism of
// §4.3.1); per image it DMAs the packed pixels from MRAM, runs the binary
// convolution + max-pool, applies BN-BinAct either in software floating
// point (default) or via the WRAM LUT, and DMAs the activation bytes back
// to MRAM.
func (r *Runner) kernelLegacy() dpu.KernelFunc {
	l := r.layout
	return func(t *dpu.Tasklet) error {
		nf := l.f
		lutWRAM := l.scratch + dpu.MaxTasklets*perTaskletScratch

		// Tasklet 0 stages the LUT into WRAM before anyone indexes it
		// (§4.1.4: "the DPU copies it from MRAM to WRAM before
		// accessing it"). Tasklets run in ID order in the simulator,
		// standing in for the barrier a hardware program would use.
		if l.useLUT && t.ID() == 0 {
			t.MRAMToWRAM(lutWRAM, l.lutMRAM, lutWRAMSize)
		}

		n := int(t.LoadI32(l.nimages))
		if n < 0 || n > BatchSize {
			return fmt.Errorf("ebnn kernel: bad image count %d", n)
		}

		// Load filters and pre-slice each into its three rows. nf <= 8
		// is enforced by NewRunner, so fixed-size stack arrays avoid
		// per-launch heap allocation.
		var filters [8]filtRows
		for f := 0; f < nf; f++ {
			w := uint32(uint16(t.Load16(l.filters + int64(f)*2)))
			filters[f] = filtRows{
				f0: t.And32(w, 7),
				f1: t.And32(uint32(t.Shr32(int32(w), 3)), 7),
				f2: t.And32(uint32(t.Shr32(int32(w), 6)), 7),
			}
		}

		// Default model: fold the BN-BinAct block into a float threshold
		// per filter, in DPU software floating point (Fig 4.2a).
		var thresholds [8]uint32
		if !l.useLUT {
			for f := 0; f < nf; f++ {
				base := l.bn + int64(f)*5*4
				w0 := t.Load32(base)
				w1 := t.Load32(base + 4)
				w2 := t.Load32(base + 8)
				w3 := t.Load32(base + 12)
				w4 := t.Load32(base + 16)
				scale := t.FDiv(w3, w2)
				diff := t.FSub(w1, w0)
				corr := t.FDiv(w4, scale)
				thresholds[f] = t.FSub(diff, corr)
			}
		}

		imgBuf := l.scratch + int64(t.ID())*perTaskletScratch
		outBuf := imgBuf + mnist.PackedSize

		T := t.Count()
		for img := t.ID(); img < n; img += T {
			// Fetch the packed image. The MRAM offset is computed with a
			// 16-bit multiply — the __mulsi3 call Fig 4.3(b) shows
			// surviving the LUT rewrite ("tied to a dependent part of
			// the program").
			off := t.Mul16(int16(img), mnist.PackedSize)
			t.MRAMToWRAM(imgBuf, l.images+int64(off), mnist.PackedSize)

			var rows [mnist.Side]uint32
			for row := 0; row < mnist.Side; row++ {
				rows[row] = t.Load32(imgBuf + int64(row)*4)
			}

			for pr := 0; pr < PoolSize; pr++ {
				for pc := 0; pc < PoolSize; pc++ {
					var acc uint32
					for f := 0; f < nf; f++ {
						fr := filters[f]
						best := int32(math.MinInt32)
						for dr := 0; dr < 2; dr++ {
							row := pr*2 + dr
							r0, r1, r2 := rows[row], rows[row+1], rows[row+2]
							for dc := 0; dc < 2; dc++ {
								c := uint(pc*2 + dc)
								w0 := t.And32(uint32(t.Shr32(int32(r0), c)), 7)
								w1 := t.And32(uint32(t.Shr32(int32(r1), c)), 7)
								w2 := t.And32(uint32(t.Shr32(int32(r2), c)), 7)
								x := t.Or32(t.Or32(t.Xor32(w0, fr.f0),
									uint32(t.Shl32(int32(t.Xor32(w1, fr.f1)), 3))),
									uint32(t.Shl32(int32(t.Xor32(w2, fr.f2)), 6)))
								v := t.Sub32(9, t.Shl32(t.Popcount32(x), 1))
								t.Charge(dpu.OpBranch, 1) // max compare
								if v > best {
									best = v
								}
							}
						}
						var bit uint32
						if l.useLUT {
							// LUT path: integer index, WRAM load.
							idx := t.Add32(best, -ConvMin)
							idx = t.Mul16(int16(idx), int16(nf))
							idx = t.Add32(idx, int32(f))
							bit = uint32(t.Load8(lutWRAM+int64(idx))) & 1
						} else {
							// Float path: convert and compare.
							vf := t.FFromInt(best)
							if t.FGe(vf, thresholds[f]) {
								bit = 1
							}
						}
						acc = t.Or32(acc, uint32(t.Shl32(int32(bit), uint(f))))
					}
					cell := int64(pr*PoolSize + pc)
					t.Store8(outBuf+cell, int8(acc))
				}
			}
			roff := t.Mul16(int16(img), ResultSize)
			t.WRAMToMRAM(l.results+int64(roff), outBuf, ResultSize)
		}
		return nil
	}
}

// BatchStats reports one inference run: the execution engine's unified
// dispatch accounting (waves, largest DPU count, cycles, Seconds of
// summed parallel DPU time, re-dispatched batches; see internal/exec)
// plus the number of images inferred.
type BatchStats struct {
	// Images is the number of images inferred.
	Images int
	exec.Stats
}

// Throughput returns images per second of DPU time.
func (s BatchStats) Throughput() float64 {
	if s.Seconds == 0 {
		return 0
	}
	return float64(s.Images) / s.Seconds
}

// waveEnd returns the smaller of a and b (the end of the current wave).
func waveEnd(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ensure sizes one staging set for a system of nd DPUs.
func (st *inferStage) ensure(nd int) {
	if len(st.imgBufs) == nd {
		return
	}
	st.imgStage = make([]byte, nd*BatchSize*mnist.PackedSize)
	st.cntStage = make([]byte, nd*4)
	st.resStage = make([]byte, nd*BatchSize*ResultSize)
	st.imgBufs = make([][]byte, nd)
	st.cntBufs = make([][]byte, nd)
	st.resBufs = make([][]byte, nd)
	st.counts = make([]int, nd)
	for i := 0; i < nd; i++ {
		st.imgBufs[i] = st.imgStage[i*BatchSize*mnist.PackedSize : (i+1)*BatchSize*mnist.PackedSize]
		st.cntBufs[i] = st.cntStage[i*4 : (i+1)*4]
	}
}

// inferWorkSet adapts the §4.1.3 multiple-images-per-DPU mapping to the
// execution engine: one shard per 16-image batch, the packed images and
// the per-DPU image counts as scatter streams, the activation buffers
// as the gather stream (read serially DPU by DPU on the synchronous
// path, per the thesis), and the softmax layer run on the host as each
// shard is decoded.
type inferWorkSet struct {
	r      *Runner
	images []mnist.Image
	preds  []int
	stream []exec.Stream
}

func (w *inferWorkSet) Shards() int {
	return (len(w.images) + BatchSize - 1) / BatchSize
}
func (w *inferWorkSet) Tasklets() int                { return w.r.tasklets }
func (w *inferWorkSet) Kernel() dpu.KernelFunc       { return w.r.kernelFn }
func (w *inferWorkSet) Broadcasts() []exec.Broadcast { return w.r.resBcasts }

// SerialGather selects the §4.1.3 synchronous gather order: "After all
// temporary results for all images in a single DPU are inferred, the
// next DPU's result is read."
func (w *inferWorkSet) SerialGather() bool { return true }

func (w *inferWorkSet) Encode(slot, start, n int) {
	st := &w.r.stages[slot]
	wave := w.images[start*BatchSize : waveEnd((start+n)*BatchSize, len(w.images))]
	// The staging buffers are reused across waves; only the counts need
	// resetting (stale image bytes in unused slots are never read by
	// the kernel).
	counts := st.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	for i := range st.cntStage {
		st.cntStage[i] = 0
	}
	for i, img := range wave {
		d := i / BatchSize
		slot := i % BatchSize
		packed := img.Pack()
		copy(st.imgBufs[d][slot*mnist.PackedSize:], packed[:])
		counts[d]++
	}
	for d, c := range counts {
		binary.LittleEndian.PutUint32(st.cntBufs[d], uint32(c))
	}
}

func (w *inferWorkSet) Scatter(slot, n int) []exec.Stream {
	st := &w.r.stages[slot]
	w.stream = append(w.stream[:0],
		exec.Stream{Ref: w.r.refImages, Bufs: st.imgBufs},
		exec.Stream{Ref: w.r.refNImages, Bufs: st.cntBufs})
	return w.stream
}

func (w *inferWorkSet) Gather(slot, n int) exec.Stream {
	st := &w.r.stages[slot]
	if w.r.eng.Pipelined() {
		// The fused wave gather reads a uniform length from every DPU:
		// images fill DPUs in order, so DPU 0 always holds the largest
		// count.
		resLen := st.counts[0] * ResultSize
		for d := 0; d < n; d++ {
			st.resBufs[d] = st.resStage[d*BatchSize*ResultSize : d*BatchSize*ResultSize+resLen]
		}
	} else {
		// The serial gather reads exactly each DPU's result bytes.
		for d := 0; d < n; d++ {
			st.resBufs[d] = st.resStage[d*BatchSize*ResultSize : d*BatchSize*ResultSize+st.counts[d]*ResultSize]
		}
	}
	return exec.Stream{Ref: w.r.refResults, Bufs: st.resBufs}
}

func (w *inferWorkSet) Decode(slot, shard, i int) {
	st := &w.r.stages[slot]
	raw := st.resBufs[i]
	for s := 0; s < st.counts[i]; s++ {
		DecodeFeaturesInto(w.r.featBuf, raw[s*ResultSize:(s+1)*ResultSize], w.r.model.F)
		w.preds = append(w.preds, w.r.model.PredictFeatures(w.r.featBuf))
	}
}

// Infer classifies the images: the host scatters 16-image batches across
// the DPUs, launches the kernel, gathers the activation buffers, and runs
// the softmax layer serially per image (§4.1.3). Wave construction,
// pipelining, and fault recovery are the execution engine's
// (internal/exec); in pipelined mode the waves flow through the host's
// asynchronous command queue so the pack/classify host work overlaps the
// simulated launches. Predictions, cycle counts, and wave statistics are
// identical either way.
func (r *Runner) Infer(images []mnist.Image) ([]int, BatchStats, error) {
	if len(images) == 0 {
		return nil, BatchStats{}, fmt.Errorf("ebnn: no images")
	}
	nd := r.sys.NumDPUs()
	r.stages[0].ensure(nd)
	if r.eng.Pipelined() {
		r.stages[1].ensure(nd)
	}
	if parent := r.eng.TraceSpan(); parent != nil {
		isp := parent.StartChild("ebnn.infer")
		isp.SetAttr("images", int64(len(images)))
		r.eng.SetTraceSpan(isp)
		defer func() {
			r.eng.SetTraceSpan(parent)
			isp.End()
		}()
	}
	stats := BatchStats{Images: len(images)}
	w := &r.iws
	w.images = images
	w.preds = make([]int, 0, len(images))
	err := r.eng.Run(w, &stats.Stats)
	preds := w.preds
	w.images, w.preds = nil, nil
	if err != nil {
		return nil, stats, err
	}
	return preds, stats, nil
}

// DecodeFeatures expands one DPU result buffer (one byte per pooled cell,
// bit f = filter f) into the flat feature vector layout of
// Model.Features.
func DecodeFeatures(result []byte, nf int) []byte {
	out := make([]byte, PoolCells*nf)
	DecodeFeaturesInto(out, result, nf)
	return out
}

// DecodeFeaturesInto is DecodeFeatures writing into a caller-provided
// buffer of at least PoolCells*nf bytes, so batch-inference loops can
// reuse one feature vector across images.
func DecodeFeaturesInto(out, result []byte, nf int) {
	for cell := 0; cell < PoolCells; cell++ {
		b := result[cell]
		for f := 0; f < nf; f++ {
			out[cell*nf+f] = (b >> uint(f)) & 1
		}
	}
}

package ebnn

import (
	"bytes"
	"encoding/binary"
	"testing"

	"pimdnn/internal/mnist"
)

func TestSerializeRoundTrip(t *testing.T) {
	ds := mnist.Load(100, 10, 51)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.F != m.F {
		t.Fatalf("F = %d", got.F)
	}
	for i := range m.Filters {
		if got.Filters[i] != m.Filters[i] {
			t.Errorf("filter %d differs", i)
		}
	}
	for i := range m.BN {
		if got.BN[i] != m.BN[i] {
			t.Errorf("BN %d differs", i)
		}
	}
	// Behavioral equality: identical predictions on the test set.
	for i := range ds.Test {
		if got.Predict(&ds.Test[i]) != m.Predict(&ds.Test[i]) {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
}

func TestReadModelRejectsCorruption(t *testing.T) {
	ds := mnist.Load(60, 5, 52)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), good...)
		f(b)
		if _, err := ReadModel(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] ^= 0xFF })
	mutate("bad version", func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) })
	mutate("huge filter count", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 1000) })
	mutate("filter overflow", func(b []byte) { binary.LittleEndian.PutUint16(b[12:], 0xFFFF) })

	if _, err := ReadModel(bytes.NewReader(good[:20])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := ReadModel(bytes.NewReader(append(append([]byte(nil), good...), 0))); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestReadModelRejectsZeroBNScale(t *testing.T) {
	ds := mnist.Load(60, 5, 53)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.BN[0].W2 = 0
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadModel(&buf); err == nil {
		t.Error("zero BN scale accepted")
	}
}

package ebnn

import (
	"math"
	"testing"
	"testing/quick"

	"pimdnn/internal/mnist"
)

func trainSmall(t *testing.T) (*Model, mnist.Dataset) {
	t.Helper()
	ds := mnist.Load(500, 100, 11)
	cfg := DefaultTrainConfig()
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, ds
}

func TestTrainValidation(t *testing.T) {
	ds := mnist.Load(10, 5, 1)
	bad := []TrainConfig{
		{Filters: 0, Epochs: 1, LearningRate: 0.1},
		{Filters: 20, Epochs: 1, LearningRate: 0.1},
		{Filters: 8, Epochs: 0, LearningRate: 0.1},
		{Filters: 8, Epochs: 1, LearningRate: 0},
	}
	for i, cfg := range bad {
		if _, err := Train(ds, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Train(mnist.Dataset{}, DefaultTrainConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTrainProducesDistinctFilters(t *testing.T) {
	m, _ := trainSmall(t)
	seen := map[uint16]bool{}
	for _, f := range m.Filters {
		if f == 0 || f == 0x1FF {
			t.Errorf("degenerate filter %#x", f)
		}
		if seen[f] {
			t.Errorf("duplicate filter %#x", f)
		}
		seen[f] = true
	}
	if len(m.Filters) != DefaultFilters {
		t.Errorf("filter count %d", len(m.Filters))
	}
}

func TestBNParamsSane(t *testing.T) {
	m, _ := trainSmall(t)
	for f, bn := range m.BN {
		if bn.W2 <= 0 {
			t.Errorf("filter %d: non-positive std %v", f, bn.W2)
		}
		if bn.W1 < ConvMin || bn.W1 > ConvMax {
			t.Errorf("filter %d: mean %v outside conv range", f, bn.W1)
		}
		if bn.W3 != 1 || bn.W0 != 0 || bn.W4 != 0 {
			t.Errorf("filter %d: unexpected BN form %+v", f, bn)
		}
	}
}

// TestAccuracy: the trained eBNN must actually classify the synthetic
// digits — the substitution is only valid if the network learns.
func TestAccuracy(t *testing.T) {
	m, ds := trainSmall(t)
	train := m.Accuracy(ds.Train)
	test := m.Accuracy(ds.Test)
	if train < 0.95 {
		t.Errorf("train accuracy %.2f < 0.95", train)
	}
	if test < 0.85 {
		t.Errorf("test accuracy %.2f < 0.85", test)
	}
}

func TestConvPoolRange(t *testing.T) {
	m, ds := trainSmall(t)
	bits := ds.Train[0].Binarize()
	pooled := m.ConvPool(&bits)
	if len(pooled) != m.F*PoolCells {
		t.Fatalf("pooled len = %d", len(pooled))
	}
	for i, v := range pooled {
		if v < ConvMin || v > ConvMax {
			t.Errorf("pooled[%d] = %d outside [%d, %d]", i, v, ConvMin, ConvMax)
		}
	}
}

// TestConvPoolManual checks the conv arithmetic against a hand-computed
// case: an all-ones window with an all-ones filter gives 9 matches = +9.
func TestConvPoolManual(t *testing.T) {
	m := &Model{F: 1, Filters: []uint16{0x1FF}} // all +1 weights
	var bits [mnist.PixelCount]byte
	for i := range bits {
		bits[i] = 1
	}
	pooled := m.ConvPool(&bits)
	for i, v := range pooled {
		if v != 9 {
			t.Fatalf("pooled[%d] = %d, want 9", i, v)
		}
	}
	// All-zero input with all-ones filter: 0 matches = -9.
	var zero [mnist.PixelCount]byte
	pooled = m.ConvPool(&zero)
	for i, v := range pooled {
		if v != -9 {
			t.Fatalf("zero input pooled[%d] = %d, want -9", i, v)
		}
	}
}

// Property: conv result parity — 2*matches-9 is always odd.
func TestConvValueParity(t *testing.T) {
	m := &Model{F: 2, Filters: []uint16{0x0F3, 0x1A5}}
	f := func(seed int64) bool {
		img := mnist.Generate(1, seed)[0]
		bits := img.Binarize()
		for _, v := range m.ConvPool(&bits) {
			if v%2 == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLUTMatchesBNBinAct: Algorithm 1's table must agree with the folded
// threshold on every possible conv value.
func TestLUTMatchesBNBinAct(t *testing.T) {
	m, _ := trainSmall(t)
	lut := m.BuildLUT()
	if len(lut) != LUTRows*m.F {
		t.Fatalf("LUT size %d", len(lut))
	}
	for v := ConvMin; v <= ConvMax; v++ {
		for f := 0; f < m.F; f++ {
			got := lut[(v-ConvMin)*m.F+f]
			want := m.BinAct(int8(v), f)
			if got != want {
				t.Errorf("LUT[v=%d,f=%d] = %d, BN-BinAct = %d", v, f, got, want)
			}
		}
	}
}

// TestLUTMonotone: BinAct with W3>0 is a step function of v — once the
// activation turns on it stays on.
func TestLUTMonotone(t *testing.T) {
	m, _ := trainSmall(t)
	lut := m.BuildLUT()
	for f := 0; f < m.F; f++ {
		on := false
		for v := ConvMin; v <= ConvMax; v++ {
			e := lut[(v-ConvMin)*m.F+f] != 0
			if on && !e {
				t.Errorf("filter %d: activation turned off at v=%d", f, v)
			}
			on = on || e
		}
		if !on {
			t.Errorf("filter %d never activates over the conv range", f)
		}
	}
}

func TestFeaturesViaLUTEqualsFeatures(t *testing.T) {
	m, ds := trainSmall(t)
	lut := m.BuildLUT()
	for i := 0; i < 20; i++ {
		a := m.Features(&ds.Test[i])
		b := m.FeaturesViaLUT(&ds.Test[i], lut)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("image %d feature %d differs: float %d vs LUT %d", i, j, a[j], b[j])
			}
		}
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float32{1, 2, 3})
	var sum float32
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
	// Large logits must not overflow.
	p = Softmax([]float32{1000, 999, 0})
	if math.IsNaN(float64(p[0])) || p[0] < p[1] {
		t.Errorf("softmax unstable: %v", p)
	}
}

func TestThresholdFoldMatchesAlgorithm1(t *testing.T) {
	// For arbitrary BN params with positive W2, W3, the folded threshold
	// decision equals the unfolded Algorithm 1 pipeline (up to float
	// rounding at exact boundaries, which the generator avoids).
	f := func(w0, w1, w4 int8, w2u, w3u uint8) bool {
		bn := BNParams{
			W0: float32(w0) / 4,
			W1: float32(w1) / 4,
			W2: 0.5 + float32(w2u)/64,
			W3: 0.5 + float32(w3u)/64,
			W4: float32(w4) / 4,
		}
		m := &Model{F: 1, BN: []BNParams{bn}}
		for v := ConvMin; v <= ConvMax; v++ {
			tmp := float32(v)
			tmp += bn.W0
			tmp -= bn.W1
			tmp /= bn.W2
			tmp *= bn.W3
			tmp += bn.W4
			want := byte(0)
			if tmp >= 0 {
				want = 1
			}
			got := m.BinAct(int8(v), 0)
			if got != want {
				// Tolerate rounding-boundary disagreements only.
				if math.Abs(float64(tmp)) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeFeatures(t *testing.T) {
	res := make([]byte, ResultSize)
	res[0] = 0b10100101 // cell 0
	res[5] = 0b00000001 // cell 5
	feats := DecodeFeatures(res, 8)
	if len(feats) != PoolCells*8 {
		t.Fatalf("feature len %d", len(feats))
	}
	wantCell0 := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	for f, w := range wantCell0 {
		if feats[f] != w {
			t.Errorf("cell0 filter %d = %d, want %d", f, feats[f], w)
		}
	}
	if feats[5*8] != 1 || feats[5*8+1] != 0 {
		t.Error("cell 5 decode wrong")
	}
}

func TestPredictFeaturesMatchesPredict(t *testing.T) {
	m, ds := trainSmall(t)
	for i := 0; i < 10; i++ {
		if m.Predict(&ds.Test[i]) != m.PredictFeatures(m.Features(&ds.Test[i])) {
			t.Fatalf("image %d: Predict and PredictFeatures disagree", i)
		}
	}
}

package ebnn

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

func benchModel(b *testing.B) (*Model, []mnist.Image) {
	b.Helper()
	ds := mnist.Load(150, 16, 21)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	m, err := Train(ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, ds.Test
}

// BenchmarkHostInference measures the pure-host reference pipeline.
func BenchmarkHostInference(b *testing.B) {
	m, imgs := benchModel(b)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = m.Predict(&imgs[i%len(imgs)])
	}
	_ = sink
}

// BenchmarkDPUInferenceLUT measures a 16-image batch through the
// simulated DPU with the LUT architecture.
func BenchmarkDPUInferenceLUT(b *testing.B) {
	m, imgs := benchModel(b)
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O0))
	r, err := NewRunner(sys, m, true, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.Infer(imgs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
	b.ReportMetric(float64(len(imgs)), "images")
}

// BenchmarkDPUInferenceFloat measures the same batch with the default
// (floating-point) architecture.
func BenchmarkDPUInferenceFloat(b *testing.B) {
	m, imgs := benchModel(b)
	sys, _ := host.NewSystem(1, host.DefaultConfig(dpu.O0))
	r, err := NewRunner(sys, m, false, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.Infer(imgs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
}

// BenchmarkTrain measures host-side training end to end.
func BenchmarkTrain(b *testing.B) {
	ds := mnist.Load(100, 10, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildLUT measures Algorithm 1.
func BenchmarkBuildLUT(b *testing.B) {
	m, _ := benchModel(b)
	b.ResetTimer()
	var sink []byte
	for i := 0; i < b.N; i++ {
		sink = m.BuildLUT()
	}
	_ = sink
}

// BenchmarkConvPool measures the bit-packed binary convolution + pool.
func BenchmarkConvPool(b *testing.B) {
	m, imgs := benchModel(b)
	bits := imgs[0].Binarize()
	b.ResetTimer()
	var sink []int8
	for i := 0; i < b.N; i++ {
		sink = m.ConvPool(&bits)
	}
	_ = sink
}

// BenchmarkInferWaveSync / BenchmarkInferWavePipelined compare the
// synchronous wave loop against the double-buffered asynchronous path on
// 16 waves of images across 4 DPUs — enough in-flight waves for the
// queue to overlap host-side packing and decoding with simulated device
// time. Simulated dpu-cycles are identical by construction.
func benchInferWave(b *testing.B, mode host.PipelineMode) {
	m, imgs := benchModel(b)
	// 4 DPUs x 16 images/DPU = 64 images per wave; 1024 images = 16 waves.
	many := make([]mnist.Image, 0, 1024)
	for len(many) < cap(many) {
		many = append(many, imgs[:min(len(imgs), cap(many)-len(many))]...)
	}
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O0))
	r, err := NewRunner(sys, m, true, 16)
	if err != nil {
		b.Fatal(err)
	}
	r.SetPipeline(mode)
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		_, st, err := r.Infer(many)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "dpu-cycles")
	b.ReportMetric(float64(len(many)), "images")
}

func BenchmarkInferWaveSync(b *testing.B)      { benchInferWave(b, host.PipelineOff) }
func BenchmarkInferWavePipelined(b *testing.B) { benchInferWave(b, host.PipelineOn) }

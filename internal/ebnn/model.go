// Package ebnn implements the embedded binarized neural network (eBNN)
// of thesis chapter 4.1: a single binary convolution + max-pool block
// with batch-normalization and binary activation, followed by a host-side
// softmax classifier.
//
// Two DPU architectures are provided, mirroring Fig 4.2:
//
//   - the default model (Fig 4.2a) keeps the BN-BinAct blocks inside the
//     DPU, paying for software floating point on every pooled value;
//   - the LUT model (Fig 4.2b, Algorithm 1) moves BN-BinAct to the host,
//     which enumerates every possible convolution-pool result into a
//     lookup table the DPU indexes instead.
//
// Filters are random binary features; the batch-norm statistics and the
// softmax classifier are trained on the host. (The thesis uses eBNN's
// pre-trained weights, which are not available; random binary features
// with trained BN thresholds and a trained linear readout preserve the
// computation structure and give verifiable accuracy on the synthetic
// digit set.)
package ebnn

import (
	"fmt"
	"math"
	"math/rand"

	"pimdnn/internal/mnist"
)

// Architecture constants for the 28×28 single-block eBNN.
const (
	// FilterSize is the convolution kernel edge (3×3, binary).
	FilterSize = 3
	// ConvSize is the valid-convolution output edge: 28-3+1.
	ConvSize = mnist.Side - FilterSize + 1
	// PoolSize is the 2×2 max-pool output edge.
	PoolSize = ConvSize / 2
	// PoolCells is the number of pooled outputs per filter.
	PoolCells = PoolSize * PoolSize
	// ConvMin and ConvMax bound the conv result: 9 XNOR matches map to
	// 2*matches-9 in [-9, 9]. The LUT row count depends only on this
	// range (Algorithm 1: "the range of the input values are dependant
	// on only the filter size").
	ConvMin = -9
	ConvMax = 9
	// LUTRows is the number of distinct conv-pool values.
	LUTRows = ConvMax - ConvMin + 1
	// DefaultFilters is the filter count used throughout the thesis
	// experiments here; with 8 filters each pooled cell's activations
	// pack into exactly one byte.
	DefaultFilters = 8
)

// BNParams holds the five per-filter batch-normalization weights in the
// exact form Algorithm 1 consumes:
//
//	tmp = ((in + W0 - W1) / W2) * W3 + W4 ; out = tmp >= 0
type BNParams struct {
	W0, W1, W2, W3, W4 float32
}

// Model is a trained eBNN.
type Model struct {
	// F is the number of binary filters.
	F int
	// Filters holds one 9-bit binary 3×3 kernel per filter: bit
	// 3*dr+dc is the weight at (dr, dc), 1 = +1 and 0 = -1.
	Filters []uint16
	// BN holds the per-filter batch-normalization parameters.
	BN []BNParams
	// Weights is the host softmax layer: NumClasses × (F*PoolCells).
	Weights [][]float32
	// Bias is the softmax layer bias, one per class.
	Bias []float32
}

// FeatureLen returns the binary feature vector length, F*PoolCells.
func (m *Model) FeatureLen() int { return m.F * PoolCells }

// ConvPool computes the integer convolution + 2×2 max-pool outputs for a
// binarized image: result[cell*F+f] is the pooled value for filter f at
// pooled cell index cell (row-major 13×13), in [-9, 9].
func (m *Model) ConvPool(bits *[mnist.PixelCount]byte) []int8 {
	// Pack rows into uint32 words once (the DPU kernel receives the
	// image in this form; see mnist.Pack).
	var rows [mnist.Side]uint32
	for r := 0; r < mnist.Side; r++ {
		var w uint32
		for c := 0; c < mnist.Side; c++ {
			if bits[r*mnist.Side+c] != 0 {
				w |= 1 << uint(c)
			}
		}
		rows[r] = w
	}
	return convPoolRows(&rows, m.Filters)
}

// convPoolRows is the shared conv+pool computation over bit-packed rows,
// used by both the host reference and (with cost accounting) the DPU
// kernel. Filter weight bit w and input bit b match when equal, so the
// XNOR convolution result is 9 - 2*popcount(window XOR filter).
func convPoolRows(rows *[mnist.Side]uint32, filters []uint16) []int8 {
	nf := len(filters)
	out := make([]int8, PoolCells*nf)
	for f, filt := range filters {
		f0 := uint32(filt) & 7
		f1 := (uint32(filt) >> 3) & 7
		f2 := (uint32(filt) >> 6) & 7
		for pr := 0; pr < PoolSize; pr++ {
			for pc := 0; pc < PoolSize; pc++ {
				best := int8(math.MinInt8)
				for dr := 0; dr < 2; dr++ {
					r := pr*2 + dr
					r0, r1, r2 := rows[r], rows[r+1], rows[r+2]
					for dc := 0; dc < 2; dc++ {
						c := uint(pc*2 + dc)
						w0 := (r0 >> c) & 7
						w1 := (r1 >> c) & 7
						w2 := (r2 >> c) & 7
						x := (w0 ^ f0) | (w1^f1)<<3 | (w2^f2)<<6
						v := int8(9 - 2*popcount9(x))
						if v > best {
							best = v
						}
					}
				}
				out[(pr*PoolSize+pc)*nf+f] = best
			}
		}
	}
	return out
}

func popcount9(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Threshold returns the folded BinAct decision threshold for filter f:
// the BN-BinAct block outputs 1 iff conv value v satisfies
// float32(v) >= Threshold(f) (valid because W2, W3 > 0 for trained
// models). The default DPU kernel computes this same fold in software
// floating point (Fig 4.2a).
func (m *Model) Threshold(f int) float32 {
	bn := m.BN[f]
	scale := bn.W3 / bn.W2
	return (bn.W1 - bn.W0) - bn.W4/scale
}

// BinAct applies BN + binary activation to a pooled value using the
// folded threshold.
func (m *Model) BinAct(v int8, f int) byte {
	if float32(v) >= m.Threshold(f) {
		return 1
	}
	return 0
}

// Features computes the full binary feature vector for an image on the
// host (the reference the DPU runs must reproduce bit-for-bit).
func (m *Model) Features(img *mnist.Image) []byte {
	bits := img.Binarize()
	pooled := m.ConvPool(&bits)
	out := make([]byte, len(pooled))
	for cell := 0; cell < PoolCells; cell++ {
		for f := 0; f < m.F; f++ {
			out[cell*m.F+f] = m.BinAct(pooled[cell*m.F+f], f)
		}
	}
	return out
}

// Logits evaluates the softmax layer on a binary feature vector.
func (m *Model) Logits(features []byte) []float32 {
	logits := make([]float32, mnist.NumClasses)
	for c := range logits {
		s := m.Bias[c]
		w := m.Weights[c]
		for i, b := range features {
			if b != 0 {
				s += w[i]
			}
		}
		logits[c] = s
	}
	return logits
}

// Softmax converts logits to probabilities.
func Softmax(logits []float32) []float32 {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	out := make([]float32, len(logits))
	for i, v := range logits {
		e := math.Exp(float64(v - max))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// Predict runs the full host-side inference pipeline for one image.
func (m *Model) Predict(img *mnist.Image) int {
	return argmax(m.Logits(m.Features(img)))
}

// PredictFeatures classifies a precomputed feature vector (used on the
// outputs gathered from DPUs, which is how the thesis's host consumes
// "temporary results", §4.1.3).
func (m *Model) PredictFeatures(features []byte) int {
	return argmax(m.Logits(features))
}

// Accuracy evaluates host-side accuracy over a set.
func (m *Model) Accuracy(imgs []mnist.Image) float64 {
	if len(imgs) == 0 {
		return 0
	}
	hit := 0
	for i := range imgs {
		if m.Predict(&imgs[i]) == imgs[i].Label {
			hit++
		}
	}
	return float64(hit) / float64(len(imgs))
}

func argmax(v []float32) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// TrainConfig controls host-side training.
type TrainConfig struct {
	// Filters is the binary filter count (default DefaultFilters).
	Filters int
	// Epochs is the number of softmax SGD epochs.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float32
	// Seed drives filter generation and SGD shuffling.
	Seed int64
}

// DefaultTrainConfig returns the configuration used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Filters: DefaultFilters, Epochs: 40, LearningRate: 0.05, Seed: 1}
}

// Train builds an eBNN on the host: random distinct binary filters,
// batch-norm statistics from the training set, and a softmax readout
// trained with SGD on the binary features.
func Train(ds mnist.Dataset, cfg TrainConfig) (*Model, error) {
	if cfg.Filters < 1 || cfg.Filters > 16 {
		return nil, fmt.Errorf("ebnn: filter count %d outside 1..16", cfg.Filters)
	}
	if len(ds.Train) == 0 {
		return nil, fmt.Errorf("ebnn: empty training set")
	}
	if cfg.Epochs < 1 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("ebnn: bad training config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	m := &Model{F: cfg.Filters}
	seen := map[uint16]bool{}
	for len(m.Filters) < cfg.Filters {
		f := uint16(rng.Intn(1 << 9))
		// Reject degenerate all-same filters and duplicates.
		if f == 0 || f == 0x1FF || seen[f] {
			continue
		}
		seen[f] = true
		m.Filters = append(m.Filters, f)
	}

	// Batch-norm statistics: per-filter mean and stddev of pooled conv
	// values over the training set, expressed in Algorithm 1 form with
	// W0=0, W1=mean, W2=std, W3=1, W4=0 (so BinAct thresholds at the
	// mean).
	sum := make([]float64, cfg.Filters)
	sumSq := make([]float64, cfg.Filters)
	n := float64(len(ds.Train) * PoolCells)
	for i := range ds.Train {
		bits := ds.Train[i].Binarize()
		pooled := m.ConvPool(&bits)
		for cell := 0; cell < PoolCells; cell++ {
			for f := 0; f < cfg.Filters; f++ {
				v := float64(pooled[cell*cfg.Filters+f])
				sum[f] += v
				sumSq[f] += v * v
			}
		}
	}
	m.BN = make([]BNParams, cfg.Filters)
	for f := range m.BN {
		mean := sum[f] / n
		variance := sumSq[f]/n - mean*mean
		if variance < 1e-3 {
			variance = 1e-3
		}
		m.BN[f] = BNParams{
			W1: float32(mean),
			W2: float32(math.Sqrt(variance)),
			W3: 1,
		}
	}

	// Softmax readout on binary features.
	features := make([][]byte, len(ds.Train))
	for i := range ds.Train {
		features[i] = m.Features(&ds.Train[i])
	}
	dim := m.FeatureLen()
	m.Weights = make([][]float32, mnist.NumClasses)
	for c := range m.Weights {
		m.Weights[c] = make([]float32, dim)
	}
	m.Bias = make([]float32, mnist.NumClasses)

	order := rng.Perm(len(ds.Train))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := features[idx]
			probs := Softmax(m.Logits(x))
			for c := 0; c < mnist.NumClasses; c++ {
				grad := probs[c]
				if c == ds.Train[idx].Label {
					grad -= 1
				}
				step := cfg.LearningRate * grad
				m.Bias[c] -= step
				w := m.Weights[c]
				for i, b := range x {
					if b != 0 {
						w[i] -= step
					}
				}
			}
		}
	}
	return m, nil
}

// BuildLUT runs Algorithm 1: the host enumerates every possible
// convolution-pool result through the BN-BinAct blocks and returns the
// lookup table the DPU indexes instead of performing floating point. The
// entry for conv value v and filter f is LUT[(v-ConvMin)*F + f], and
// values are stored with the ConvMin offset exactly as the thesis
// describes ("the largest negative value is the first index").
func (m *Model) BuildLUT() []byte {
	lut := make([]byte, LUTRows*m.F)
	for i := ConvMin; i <= ConvMax; i++ {
		for j := 0; j < m.F; j++ {
			bn := m.BN[j]
			tmp := float32(i)
			tmp += bn.W0
			tmp -= bn.W1
			tmp /= bn.W2
			tmp *= bn.W3
			tmp += bn.W4
			var res byte
			if tmp >= 0 {
				res = 1
			}
			lut[(i-ConvMin)*m.F+j] = res
		}
	}
	return lut
}

// FeaturesViaLUT computes features using the LUT path on the host (the
// reference for the Fig 4.2b DPU kernel).
func (m *Model) FeaturesViaLUT(img *mnist.Image, lut []byte) []byte {
	bits := img.Binarize()
	pooled := m.ConvPool(&bits)
	out := make([]byte, len(pooled))
	for cell := 0; cell < PoolCells; cell++ {
		for f := 0; f < m.F; f++ {
			v := pooled[cell*m.F+f]
			out[cell*m.F+f] = lut[(int(v)-ConvMin)*m.F+f]
		}
	}
	return out
}

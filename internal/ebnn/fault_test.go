package ebnn

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/host"
	"pimdnn/internal/mnist"
)

// TestInferFaultRecovery: a DPU dying between inference waves must not
// change a single prediction — its 16-image batches are re-dispatched
// onto surviving DPUs, which compute bit-identical results. Seed 1 with
// DeadFrac 0.3 deterministically dooms DPU 1 of a 4-DPU system (25% of
// the array); DeadAfterLaunches 1 lets it finish the first wave before
// dying mid-run.
func TestInferFaultRecovery(t *testing.T) {
	ds := mnist.Load(260, 16, 41)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 128 images on 4 DPUs = two full waves of 16-image batches.
	images := ds.Train[:128]

	clean, err := host.NewSystem(4, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	rClean, err := NewRunner(clean, m, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := rClean.Infer(images)
	if err != nil {
		t.Fatal(err)
	}

	modes := []struct {
		name string
		mode host.PipelineMode
	}{
		{"sync", host.PipelineOff},
		{"pipelined", host.PipelineOn},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			sys, err := host.NewSystem(4, host.DefaultConfig(dpu.O0))
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(sys, m, true, 16)
			if err != nil {
				t.Fatal(err)
			}
			r.SetPipeline(mode.mode)
			sys.InjectFaults(dpu.FaultPlan{Seed: 1, DeadFrac: 0.3, DeadAfterLaunches: 1})
			for call := 0; call < 2; call++ {
				got, st, err := r.Infer(images)
				if err != nil {
					t.Fatalf("call %d: Infer under faults: %v", call, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("call %d image %d: predicted %d, fault-free run predicted %d",
							call, i, got[i], want[i])
					}
				}
				if call == 0 && st.Retries == 0 {
					t.Error("no re-dispatches recorded; DPU 1 should have died mid-run")
				}
				if st.Images != len(images) {
					t.Errorf("call %d: stats cover %d images, want %d", call, st.Images, len(images))
				}
			}
		})
	}
}

// TestInferTransientFaults: recoverable transfer and trap faults leave
// every DPU alive; retried batches still classify identically.
func TestInferTransientFaults(t *testing.T) {
	ds := mnist.Load(220, 16, 42)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	m, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := ds.Train[:96]

	clean, err := host.NewSystem(3, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	rClean, err := NewRunner(clean, m, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := rClean.Infer(images)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := host.NewSystem(3, host.DefaultConfig(dpu.O0))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(sys, m, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	sys.InjectFaults(dpu.FaultPlan{Seed: 3, TransferProb: 0.1, TrapProb: 0.08})
	got, st, err := r.Infer(images)
	if err != nil {
		t.Fatalf("Infer under transient faults: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: predicted %d, fault-free run predicted %d", i, got[i], want[i])
		}
	}
	if st.Retries == 0 {
		t.Error("transient plan produced no re-dispatches at these rates")
	}
}

package yolo

import (
	"math"
	"sort"
)

// ConfidenceThreshold filters detections before NMS (darknet default).
const ConfidenceThreshold = 0.5

// Detection is one decoded box in input-image pixel coordinates.
type Detection struct {
	// X, Y are the box center; W, H its size, all in pixels.
	X, Y, W, H float64
	// Class is the argmax class index; Confidence is
	// objectness × class probability.
	Class      int
	Confidence float64
}

// decodeScale converts one yolo head tensor to detections. The tensor is
// (3*(5+classes), g, g); per anchor a and cell (cy, cx):
//
//	bx = (sigmoid(tx) + cx) * stride
//	by = (sigmoid(ty) + cy) * stride
//	bw = anchor.W * exp(tw)
//	bh = anchor.H * exp(th)
//
// Objectness and class scores pass through sigmoid. This stage runs on
// the host in floating point: the thesis delegates only the data-centric
// GEMM to DPUs (§4.2.3), and the decode consumes dequantized activations.
func (n *Network) decodeScale(t *Tensor, mask []int) []Detection {
	var dets []Detection
	grid := t.H
	stride := float64(n.Cfg.InputSize) / float64(grid)
	per := 5 + n.Cfg.Classes
	for ai, aIdx := range mask {
		anchor := n.anchors[aIdx]
		base := ai * per
		for cy := 0; cy < grid; cy++ {
			for cx := 0; cx < grid; cx++ {
				get := func(ch int) float64 {
					return float64(t.At(base+ch, cy, cx)) / QOne
				}
				obj := sigmoid(get(4))
				if obj < ConfidenceThreshold {
					continue
				}
				bestC, bestP := 0, 0.0
				for c := 0; c < n.Cfg.Classes; c++ {
					if p := sigmoid(get(5 + c)); p > bestP {
						bestC, bestP = c, p
					}
				}
				conf := obj * bestP
				if conf < ConfidenceThreshold {
					continue
				}
				dets = append(dets, Detection{
					X:          (sigmoid(get(0)) + float64(cx)) * stride,
					Y:          (sigmoid(get(1)) + float64(cy)) * stride,
					W:          anchor.W * math.Exp(clampExp(get(2))),
					H:          anchor.H * math.Exp(clampExp(get(3))),
					Class:      bestC,
					Confidence: conf,
				})
			}
		}
	}
	return dets
}

// clampExp bounds tw/th so synthetic activations cannot explode exp.
func clampExp(x float64) float64 {
	if x > 4 {
		return 4
	}
	if x < -4 {
		return -4
	}
	return x
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// IoU computes intersection-over-union of two center-format boxes.
func IoU(a, b Detection) float64 {
	ax0, ay0, ax1, ay1 := a.X-a.W/2, a.Y-a.H/2, a.X+a.W/2, a.Y+a.H/2
	bx0, by0, bx1, by1 := b.X-b.W/2, b.Y-b.H/2, b.X+b.W/2, b.Y+b.H/2
	ix := math.Min(ax1, bx1) - math.Max(ax0, bx0)
	iy := math.Min(ay1, by1) - math.Max(ay0, by0)
	if ix <= 0 || iy <= 0 {
		return 0
	}
	inter := ix * iy
	union := a.W*a.H + b.W*b.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// NMS performs per-class non-maximum suppression at the given IoU
// threshold, keeping the highest-confidence box of each overlapping
// cluster.
func NMS(dets []Detection, iouThreshold float64) []Detection {
	sorted := append([]Detection(nil), dets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	var keep []Detection
	for _, d := range sorted {
		ok := true
		for _, k := range keep {
			if k.Class == d.Class && IoU(k, d) > iouThreshold {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, d)
		}
	}
	return keep
}

package yolo

import (
	"reflect"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

// TestForwardBlockChargingParity: a full 75-conv forward pass must be
// observationally identical between the legacy per-operation charging
// kernels and the block-charged fast path — same tensors, detections,
// per-layer cycle stats, per-DPU clocks, and subroutine profiles.
func TestForwardBlockChargingParity(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 9)
	maxK, maxN := n.GEMMBounds()

	run := func(legacy bool) (*Result, *ForwardStats, []uint64, map[string]uint64) {
		sys, err := host.NewSystem(4, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64, LegacyCharging: legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, stats, err := n.Forward(in, r)
		if err != nil {
			t.Fatal(err)
		}
		cyc := make([]uint64, sys.NumDPUs())
		for i := range cyc {
			cyc[i] = sys.DPU(i).TotalCycles()
		}
		return res, stats, cyc, sys.Profile().Snapshot()
	}

	legRes, legStats, legCyc, legProf := run(true)
	blkRes, blkStats, blkCyc, blkProf := run(false)

	for s := range legRes.YoloOutputs {
		if !reflect.DeepEqual(legRes.YoloOutputs[s].Data, blkRes.YoloOutputs[s].Data) {
			t.Errorf("scale %d output diverges between legacy and block charging", s)
		}
	}
	if !reflect.DeepEqual(legRes.Detections, blkRes.Detections) {
		t.Error("detections diverge between legacy and block charging")
	}
	if !reflect.DeepEqual(legStats, blkStats) {
		t.Errorf("forward stats diverge:\nlegacy: %+v\nblock:  %+v", legStats, blkStats)
	}
	if !reflect.DeepEqual(legCyc, blkCyc) {
		t.Errorf("per-DPU cycles diverge:\nlegacy: %v\nblock:  %v", legCyc, blkCyc)
	}
	if !reflect.DeepEqual(legProf, blkProf) {
		t.Errorf("subroutine profiles diverge:\nlegacy: %v\nblock:  %v", legProf, blkProf)
	}
}

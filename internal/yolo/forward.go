package yolo

import (
	"fmt"

	"pimdnn/internal/gemm"
)

// LayerStat records one layer's DPU execution.
type LayerStat struct {
	Layer    int
	Kind     LayerKind
	DPUsUsed int
	Cycles   uint64
	Seconds  float64
	// Retries counts row shards re-dispatched after injected faults.
	Retries int
	// Tasklets is the per-DPU tasklet count the layer launched with —
	// the auto-mapper's per-shape choice when the runner plans, the
	// hand-tuned constant otherwise.
	Tasklets int
	// PredictedSeconds is the planner's analytic latency for the layer;
	// zero when the runner runs a fixed mapping. Comparing it against
	// Seconds is the calibration loop (cmd/upmem-profile -calibrate).
	PredictedSeconds float64
}

// ForwardStats aggregates a DPU forward pass.
type ForwardStats struct {
	Layers []LayerStat
	// Cycles and Seconds sum the conv layers' DPU time (the host-side
	// layers are not part of the delegated workload, §4.2.3).
	Cycles  uint64
	Seconds float64
	// Retries sums the conv layers' fault re-dispatches; nonzero only
	// when fault injection is armed on the underlying system.
	Retries int
}

// MaxLayerSeconds returns the slowest single layer (the thesis reports a
// ~6 s max layer within the 65 s total, §4.3.1).
func (s ForwardStats) MaxLayerSeconds() float64 {
	var m float64
	for _, l := range s.Layers {
		if l.Seconds > m {
			m = l.Seconds
		}
	}
	return m
}

// Result carries the network outputs.
type Result struct {
	// YoloOutputs are the raw detection tensors at the three scales.
	YoloOutputs []*Tensor
	// Detections are the decoded, NMS-filtered boxes.
	Detections []Detection
}

// Forward runs the network. If runner is nil every convolution uses the
// host reference GEMM; otherwise convolutions are delegated to the DPU
// system with the Fig 4.6 row-per-DPU mapping. Both paths are bit-exact
// against each other.
func (n *Network) Forward(input *Tensor, runner *gemm.Runner) (*Result, *ForwardStats, error) {
	if input.C != 3 || input.H != n.Cfg.InputSize || input.W != n.Cfg.InputSize {
		return nil, nil, fmt.Errorf("yolo: input %dx%dx%d, want 3x%dx%d",
			input.C, input.H, input.W, n.Cfg.InputSize, n.Cfg.InputSize)
	}
	outputs := make([]*Tensor, len(n.Defs))
	stats := &ForwardStats{}
	res := &Result{}
	cur := input
	// One im2col patch matrix reused across conv layers; Multiply and
	// Reference both consume it before returning, so the next layer may
	// overwrite it.
	var im2colBuf []int16

	for i, def := range n.Defs {
		switch def.Kind {
		case Conv:
			b, k, cols := Im2ColInto(im2colBuf, cur, def.Size, def.Stride)
			im2colBuf = b
			var (
				c   []int16
				err error
			)
			if runner == nil {
				c, err = gemm.Reference(def.Filters, cols, k, 1, n.Weights[i].W, b)
				if err != nil {
					return nil, nil, fmt.Errorf("yolo: layer %d: %w", i, err)
				}
			} else {
				if runner.MetricsOn() {
					runner.SetScope(fmt.Sprintf("yolo_conv%03d", i))
				}
				if runner.ResidencyOn() {
					runner.SetWeightLayer(i)
				}
				reqSp := runner.TraceSpan()
				if reqSp != nil {
					lsp := reqSp.StartChild(fmt.Sprintf("yolo_conv%03d", i))
					lsp.SetAttr("layer", int64(i))
					runner.SetTraceSpan(lsp)
				}
				var st gemm.Stats
				c, st, err = runner.Multiply(def.Filters, cols, k, 1, n.Weights[i].W, b)
				if reqSp != nil {
					runner.TraceSpan().End()
					runner.SetTraceSpan(reqSp)
				}
				if err != nil {
					return nil, nil, fmt.Errorf("yolo: layer %d: %w", i, err)
				}
				ls := LayerStat{
					Layer: i, Kind: Conv, DPUsUsed: st.DPUsUsed,
					Cycles: st.Cycles, Seconds: st.Seconds, Retries: st.Retries,
					Tasklets: st.Tasklets,
				}
				if mp, ok := runner.LastMapping(); ok {
					ls.PredictedSeconds = mp.PredictedSeconds
				}
				stats.Layers = append(stats.Layers, ls)
				stats.Cycles += st.Cycles
				stats.Seconds += st.Seconds
				stats.Retries += st.Retries
			}
			applyBiasAct(c, def.Filters, cols, n.Weights[i].Bias, def.Activation)
			s := n.shapes[i]
			cur = &Tensor{C: s.c, H: s.h, W: s.w, Data: c}
		case Shortcut:
			out := cur.Clone()
			shortcutAdd(out, outputs[i+def.From])
			cur = out
		case Route:
			srcs := make([]*Tensor, len(def.Layers))
			for j, ref := range def.Layers {
				src := ref
				if ref < 0 {
					src = i + ref
				}
				srcs[j] = outputs[src]
			}
			cur = routeConcat(srcs)
		case Upsample:
			cur = upsample(cur, def.Stride)
		case Yolo:
			res.YoloOutputs = append(res.YoloOutputs, cur)
			dets := n.decodeScale(cur, def.Mask)
			res.Detections = append(res.Detections, dets...)
		}
		outputs[i] = cur
	}
	res.Detections = NMS(res.Detections, 0.45)
	return res, stats, nil
}

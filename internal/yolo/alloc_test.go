package yolo

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

// TestForwardSteadyStateAllocBound pins the per-forward allocation
// budget of the DPU-delegated YOLO path. A 75-conv forward on a warm
// runner allocates only per-layer result tensors and launch bookkeeping
// (~460 on this graph); it used to allocate ~2178 before the exec
// engine's per-wave stats and the im2col staging were made reusable.
// The bound fails loudly if per-wave or per-tile allocation returns.
func TestForwardSteadyStateAllocBound(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector perturbs AllocsPerRun by detector-internal allocations")
	}
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 9)
	maxK, maxN := n.GEMMBounds()
	sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 16, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the runner's reusable staging buffers out of the measurement.
	if _, _, err := n.Forward(in, r); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, _, err := n.Forward(in, r); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 520 {
		t.Errorf("Forward steady state allocates %.1f per call, want <= 520 (per-layer results + launch bookkeeping only)", avg)
	}
}

package yolo

import (
	"bytes"
	"testing"
)

func TestSaveLoadWeights(t *testing.T) {
	n1, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n1.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}

	// A second network with a different seed diverges...
	cfg2 := tinyConfig()
	cfg2.Seed = 99
	n2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	img := SyntheticScene(32, 12)
	r1, _, err := n1.Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := n2.Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for s := range r1.YoloOutputs {
		for i := range r1.YoloOutputs[s].Data {
			if r1.YoloOutputs[s].Data[i] != r2.YoloOutputs[s].Data[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical networks")
	}

	// ...until it loads n1's weights, after which it is bit-identical.
	if err := n2.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	r3, _, err := n2.Forward(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := range r1.YoloOutputs {
		for i := range r1.YoloOutputs[s].Data {
			if r1.YoloOutputs[s].Data[i] != r3.YoloOutputs[s].Data[i] {
				t.Fatalf("scale %d element %d differs after weight load", s, i)
			}
		}
	}
}

func TestLoadWeightsRejectsMismatchedGraph(t *testing.T) {
	n1, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n1.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	// A wider graph must reject the weight file.
	wide, err := New(Config{InputSize: 32, Classes: 1, WidthDiv: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.LoadWeights(&buf); err == nil {
		t.Error("mismatched weight file accepted")
	}
}

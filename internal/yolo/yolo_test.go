package yolo

import (
	"math"
	"math/rand"
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

// tinyConfig is a full 75-conv graph small enough to simulate end to end.
func tinyConfig() Config {
	return Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3}
}

func TestBuildLayersStructure(t *testing.T) {
	ls, err := BuildLayers(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := CountConvLayers(ls); got != 75 {
		t.Errorf("conv layers = %d, want 75 (standard yolov3.cfg)", got)
	}
	if len(ls) != 107 {
		t.Errorf("total layers = %d, want 107", len(ls))
	}
	yolos := 0
	for _, l := range ls {
		if l.Kind == Yolo {
			yolos++
		}
	}
	if yolos != 3 {
		t.Errorf("yolo layers = %d, want 3", yolos)
	}
	// The three route-to-earlier links of the head.
	if ls[86].Kind != Route || len(ls[86].Layers) != 2 || ls[86].Layers[1] != 61 {
		t.Errorf("layer 86 = %+v, want route -1,61", ls[86])
	}
	if ls[98].Kind != Route || ls[98].Layers[1] != 36 {
		t.Errorf("layer 98 = %+v, want route -1,36", ls[98])
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InputSize: 100, Classes: 1, WidthDiv: 1}, // not multiple of 32
		{InputSize: 0, Classes: 1, WidthDiv: 1},
		{InputSize: 416, Classes: 0, WidthDiv: 1},
		{InputSize: 416, Classes: 1, WidthDiv: 0},
	}
	for i, cfg := range bad {
		if _, err := BuildLayers(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFullNetworkShapes(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Detection tensors: 255 channels at 13, 26, 52.
	checks := []struct {
		layer   int
		c, h, w int
	}{
		{81, 255, 13, 13},
		{93, 255, 26, 26},
		{105, 255, 52, 52},
	}
	for _, ck := range checks {
		c, h, w := n.Shape(ck.layer)
		if c != ck.c || h != ck.h || w != ck.w {
			t.Errorf("layer %d shape = %dx%dx%d, want %dx%dx%d",
				ck.layer, c, h, w, ck.c, ck.h, ck.w)
		}
	}
}

func TestFullNetworkMACs(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	macs := n.MACs()
	// Standard YOLOv3@416 is ~65.9 GFLOPs = ~32.9 GMACs.
	if macs < 30e9 || macs > 36e9 {
		t.Errorf("full YOLOv3 MACs = %.3g, want ~32.9e9", float64(macs))
	}
	t.Logf("YOLOv3-416 MACs = %.4g", float64(macs))
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 5)
	for _, layer := range []int{0, 1} { // stride 1 and stride 2 convs
		viaGEMM, err := n.ConvHost(layer, in)
		if err != nil {
			t.Fatal(err)
		}
		direct := n.ConvDirect(layer, in)
		if viaGEMM.C != direct.C || viaGEMM.H != direct.H || viaGEMM.W != direct.W {
			t.Fatalf("layer %d shape mismatch", layer)
		}
		for i := range direct.Data {
			if viaGEMM.Data[i] != direct.Data[i] {
				t.Fatalf("layer %d element %d: gemm %d, direct %d",
					layer, i, viaGEMM.Data[i], direct.Data[i])
			}
		}
		in = viaGEMM
	}
}

func TestIm2ColShape(t *testing.T) {
	in := NewTensor(2, 6, 6)
	for i := range in.Data {
		in.Data[i] = int16(i)
	}
	b, k, n := Im2Col(in, 3, 2)
	if k != 18 || n != 9 {
		t.Fatalf("K=%d N=%d, want 18, 9", k, n)
	}
	if len(b) != k*n {
		t.Fatalf("B len %d", len(b))
	}
	// Center tap of channel 0 at output (1,1) is input (0, 2, 2) = 14.
	row := (0*3+1)*3 + 1
	if b[row*n+4] != in.At(0, 2, 2) {
		t.Errorf("center tap = %d, want %d", b[row*n+4], in.At(0, 2, 2))
	}
	// Top-left tap of output (0,0) reads padding (zero).
	if b[0*n+0] != 0 {
		t.Errorf("padded tap = %d, want 0", b[0])
	}
}

func TestUpsample(t *testing.T) {
	in := NewTensor(1, 2, 2)
	in.Data = []int16{1, 2, 3, 4}
	out := upsample(in, 2)
	want := []int16{1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("upsample[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
}

func TestRouteConcat(t *testing.T) {
	a := NewTensor(1, 2, 2)
	b := NewTensor(2, 2, 2)
	for i := range a.Data {
		a.Data[i] = 1
	}
	for i := range b.Data {
		b.Data[i] = 2
	}
	out := routeConcat([]*Tensor{a, b})
	if out.C != 3 || out.At(0, 0, 0) != 1 || out.At(1, 0, 0) != 2 || out.At(2, 1, 1) != 2 {
		t.Errorf("route concat wrong: %+v", out)
	}
}

func TestShortcutSaturates(t *testing.T) {
	a := NewTensor(1, 1, 2)
	b := NewTensor(1, 1, 2)
	a.Data = []int16{32000, -32000}
	b.Data = []int16{32000, -32000}
	shortcutAdd(a, b)
	if a.Data[0] != 32767 || a.Data[1] != -32768 {
		t.Errorf("shortcut = %v, want saturated", a.Data)
	}
}

func TestQuantize(t *testing.T) {
	tests := []struct {
		give float64
		want int16
	}{
		{0, 0},
		{1, 32},
		{-1, -32},
		{0.5, 16},
		{1e9, 32767},
		{-1e9, -32768},
		{1.0 / 64, 1}, // rounds half away
	}
	for _, tt := range tests {
		if got := Quantize(tt.give); got != tt.want {
			t.Errorf("Quantize(%v) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestQuantizeTensorValidation(t *testing.T) {
	if _, err := QuantizeTensor(1, 2, 2, []float64{1}); err == nil {
		t.Error("short data accepted")
	}
	tt, err := QuantizeTensor(1, 1, 2, []float64{1, -1})
	if err != nil || tt.Data[0] != 32 || tt.Data[1] != -32 {
		t.Errorf("QuantizeTensor = %+v, %v", tt, err)
	}
}

func TestDecodeScaleHandcrafted(t *testing.T) {
	cfg := Config{InputSize: 416, Classes: 2, WidthDiv: 1, Seed: 1}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	per := 5 + cfg.Classes
	grid := 13
	tt := NewTensor(3*per, grid, grid)
	// Fill objectness with strongly negative values so nothing fires...
	for ai := 0; ai < 3; ai++ {
		for cy := 0; cy < grid; cy++ {
			for cx := 0; cx < grid; cx++ {
				tt.Set(ai*per+4, cy, cx, Quantize(-5))
			}
		}
	}
	// ...except anchor 1 (mask index 1 -> anchor 7) at cell (6, 3).
	tt.Set(1*per+4, 6, 3, Quantize(5))   // objectness
	tt.Set(1*per+5+1, 6, 3, Quantize(5)) // class 1
	tt.Set(1*per+0, 6, 3, 0)             // tx=0 -> bx=(0.5+3)*32
	tt.Set(1*per+1, 6, 3, 0)             // ty=0
	tt.Set(1*per+2, 6, 3, 0)             // tw=0 -> anchor width
	tt.Set(1*per+3, 6, 3, 0)

	dets := n.decodeScale(tt, []int{6, 7, 8})
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	d := dets[0]
	if d.Class != 1 {
		t.Errorf("class = %d, want 1", d.Class)
	}
	if math.Abs(d.X-3.5*32) > 1e-9 || math.Abs(d.Y-6.5*32) > 1e-9 {
		t.Errorf("center = (%v, %v), want (112, 208)", d.X, d.Y)
	}
	if math.Abs(d.W-156) > 1e-9 || math.Abs(d.H-198) > 1e-9 {
		t.Errorf("size = (%v, %v), want anchor 7 = (156, 198)", d.W, d.H)
	}
	if d.Confidence < 0.9 {
		t.Errorf("confidence = %v", d.Confidence)
	}
}

func TestIoU(t *testing.T) {
	a := Detection{X: 10, Y: 10, W: 10, H: 10}
	if got := IoU(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self IoU = %v", got)
	}
	b := Detection{X: 30, Y: 30, W: 10, H: 10}
	if got := IoU(a, b); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	// Half-overlapping: intersection 50, union 150.
	c := Detection{X: 15, Y: 10, W: 10, H: 10}
	if got := IoU(a, c); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("half IoU = %v, want 1/3", got)
	}
}

func TestNMS(t *testing.T) {
	dets := []Detection{
		{X: 10, Y: 10, W: 10, H: 10, Class: 0, Confidence: 0.9},
		{X: 11, Y: 10, W: 10, H: 10, Class: 0, Confidence: 0.8}, // suppressed
		{X: 11, Y: 10, W: 10, H: 10, Class: 1, Confidence: 0.7}, // different class: kept
		{X: 40, Y: 40, W: 10, H: 10, Class: 0, Confidence: 0.6}, // disjoint: kept
	}
	keep := NMS(dets, 0.45)
	if len(keep) != 3 {
		t.Fatalf("NMS kept %d, want 3: %+v", len(keep), keep)
	}
	if keep[0].Confidence != 0.9 {
		t.Errorf("NMS not sorted by confidence")
	}
}

func TestForwardHostRuns(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 7)
	res, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.YoloOutputs) != 3 {
		t.Fatalf("yolo outputs = %d", len(res.YoloOutputs))
	}
	// Grids at strides 32, 16, 8 of a 32-pixel input: 1, 2, 4.
	wantGrids := []int{1, 2, 4}
	for i, out := range res.YoloOutputs {
		if out.H != wantGrids[i] || out.W != wantGrids[i] {
			t.Errorf("scale %d grid = %dx%d, want %d", i, out.H, out.W, wantGrids[i])
		}
	}
}

func TestForwardInputValidation(t *testing.T) {
	n, _ := New(tinyConfig())
	if _, _, err := n.Forward(NewTensor(3, 64, 64), nil); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, _, err := n.Forward(NewTensor(1, 32, 32), nil); err == nil {
		t.Error("wrong channel count accepted")
	}
}

// TestForwardDPUMatchesHost: the DPU-delegated forward pass must be
// bit-exact against the host reference across all 75 convolutions.
func TestForwardDPUMatchesHost(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 9)
	hostRes, _, err := n.Forward(in, nil)
	if err != nil {
		t.Fatal(err)
	}

	maxK, maxN := n.GEMMBounds()
	sys, err := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	dpuRes, stats, err := n.Forward(in, runner)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Layers) != 75 {
		t.Errorf("conv layer stats = %d, want 75", len(stats.Layers))
	}
	if stats.Seconds <= 0 {
		t.Error("no DPU time accumulated")
	}
	for s := range hostRes.YoloOutputs {
		h := hostRes.YoloOutputs[s]
		d := dpuRes.YoloOutputs[s]
		for i := range h.Data {
			if h.Data[i] != d.Data[i] {
				t.Fatalf("scale %d element %d: host %d, DPU %d", s, i, h.Data[i], d.Data[i])
			}
		}
	}
	if len(hostRes.Detections) != len(dpuRes.Detections) {
		t.Errorf("detections differ: host %d, DPU %d", len(hostRes.Detections), len(dpuRes.Detections))
	}
}

// TestEstimateAgreesWithSimulation: the analytic estimator must track the
// simulated DPU time on a network small enough to run both ways.
func TestEstimateAgreesWithSimulation(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 9)
	const tasklets, tileCols = 8, 64
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	maxK, maxN := n.GEMMBounds()
	runner, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: tasklets, TileCols: tileCols,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := n.Forward(in, runner)
	if err != nil {
		t.Fatal(err)
	}
	est, perLayer, err := n.EstimateSeconds(EstimateConfig{
		Opt: dpu.O3, Tasklets: tasklets, DPUs: 4, TileCols: tileCols,
		FrequencyHz: dpu.DefaultFrequencyHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(perLayer) != 75 {
		t.Errorf("per-layer estimates = %d", len(perLayer))
	}
	ratio := est / stats.Seconds
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("estimate %.4gs vs simulated %.4gs (ratio %.2f)", est, stats.Seconds, ratio)
	}
	t.Logf("estimate %.4gs, simulated %.4gs, ratio %.2f", est, stats.Seconds, ratio)
}

// TestHeadlineLatencyOrder: the full 416×416 network on the full system
// lands in the same order of magnitude as the thesis's 65 s best case.
func TestHeadlineLatencyOrder(t *testing.T) {
	n, err := New(FullConfig())
	if err != nil {
		t.Fatal(err)
	}
	total, perLayer, err := n.EstimateSeconds(DefaultEstimateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if total < 10 || total > 300 {
		t.Errorf("full YOLOv3 estimate = %.1fs; thesis best case is 65s, want same order", total)
	}
	var maxLayer float64
	for _, s := range perLayer {
		if s > maxLayer {
			maxLayer = s
		}
	}
	t.Logf("full YOLOv3: %.1fs total, %.2fs max layer (paper: 65s, ~6s max, ~0.9s avg)", total, maxLayer)
	if maxLayer > total/2 {
		t.Errorf("one layer dominates: %.1fs of %.1fs", maxLayer, total)
	}
}

func TestEstimateValidation(t *testing.T) {
	n, _ := New(tinyConfig())
	if _, _, err := n.EstimateSeconds(EstimateConfig{Tasklets: 0, DPUs: 1, TileCols: 64, FrequencyHz: 1}); err == nil {
		t.Error("0 tasklets accepted")
	}
	if _, _, err := n.EstimateSeconds(EstimateConfig{Tasklets: 1, DPUs: 0, TileCols: 64, FrequencyHz: 1}); err == nil {
		t.Error("0 DPUs accepted")
	}
}

func TestSyntheticSceneDeterministic(t *testing.T) {
	a := SyntheticScene(32, 42)
	b := SyntheticScene(32, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("scene not deterministic")
		}
	}
	c := SyntheticScene(32, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical scenes")
	}
}

func TestTensorAccessors(t *testing.T) {
	tt := NewTensor(2, 3, 4)
	tt.Set(1, 2, 3, -7)
	if tt.At(1, 2, 3) != -7 {
		t.Error("At/Set roundtrip failed")
	}
	if tt.Len() != 24 {
		t.Errorf("Len = %d", tt.Len())
	}
	cl := tt.Clone()
	cl.Set(0, 0, 0, 9)
	if tt.At(0, 0, 0) == 9 {
		t.Error("Clone aliases data")
	}
	d := tt.Dequantize()
	if d[tt.Len()-1] != -7.0/32 {
		t.Errorf("Dequantize = %v", d[tt.Len()-1])
	}
}

func TestSqrtFloat(t *testing.T) {
	for _, x := range []float64{1, 2, 9, 100, 576} {
		if got := sqrtFloat(x); math.Abs(got-math.Sqrt(x)) > 1e-9 {
			t.Errorf("sqrtFloat(%v) = %v", x, got)
		}
	}
	if sqrtFloat(0) != 0 || sqrtFloat(-1) != 0 {
		t.Error("sqrtFloat edge cases")
	}
}

func TestWeightsScaleWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := synthWeights(rng, 4, 9)
	big := synthWeights(rng, 4, 576)
	meanAbs := func(w []int16) float64 {
		var s float64
		for _, v := range w {
			s += math.Abs(float64(v))
		}
		return s / float64(len(w))
	}
	if meanAbs(big.W) >= meanAbs(small.W) {
		t.Errorf("weight magnitude should shrink with K: %v vs %v",
			meanAbs(big.W), meanAbs(small.W))
	}
}

package yolo

import (
	"fmt"

	"pimdnn/internal/dpu"
	"pimdnn/internal/model"
	"pimdnn/internal/plan"
)

// EstimateConfig parameterizes the analytic latency estimate.
type EstimateConfig struct {
	Opt      dpu.OptLevel
	Tasklets int
	// DPUs is the system size available to the row-per-DPU mapping.
	DPUs int
	// TileCols matches the GEMM runner's tile width (tiled kernel).
	TileCols int
	// Naive selects the thesis-faithful kernel with MRAM-resident ctmp
	// (see gemm.RunnerConfig.Naive).
	Naive bool
	// FrequencyHz is the DPU clock.
	FrequencyHz float64
}

// DefaultEstimateConfig mirrors the thesis's measured configuration:
// threading + O3 on the 2,560-DPU system running its own (MRAM-bound)
// kernel (§4.3.1). The mapping constants come from plan.Fixed — the
// same hand-tuned source of truth every network deployment falls back
// to when the auto-mapper is off.
func DefaultEstimateConfig() EstimateConfig {
	return EstimateConfig{
		Opt:         dpu.O3,
		Tasklets:    plan.FixedTasklets,
		DPUs:        dpu.SystemDPUs,
		TileCols:    plan.FixedTileCols,
		Naive:       true,
		FrequencyHz: dpu.DefaultFrequencyHz,
	}
}

// EstimateSeconds computes the single-image inference latency of the
// network analytically, layer by layer. The per-wave cycle counts come
// from model.GEMMRowCycles — the same kernel-exact cost functions the
// auto-mapper (internal/plan) ranks candidate mappings with — so this
// is now a thin wrapper: shape extraction and wave arithmetic here,
// charge structure there. It exists because the full 416×416 YOLOv3
// (~33 GMACs) is too large to simulate operation-by-operation; on
// networks small enough to run both ways the estimate tracks the
// simulator within a few percent (verified in tests).
//
// The thesis's measured best case is 65 s per image with a ~6 s max layer
// (§4.3.1); the Naive estimate reproduces that order for the full
// configuration.
func (n *Network) EstimateSeconds(ec EstimateConfig) (total float64, perLayer []float64, err error) {
	if ec.Tasklets < 1 || ec.Tasklets > dpu.MaxTasklets {
		return 0, nil, fmt.Errorf("yolo: estimate tasklets %d outside 1..%d", ec.Tasklets, dpu.MaxTasklets)
	}
	if ec.DPUs < 1 || ec.TileCols < 4 || ec.FrequencyHz <= 0 {
		return 0, nil, fmt.Errorf("yolo: bad estimate config %+v", ec)
	}
	kc := model.KernelConfig{
		Opt:      ec.Opt,
		Tasklets: ec.Tasklets,
		TileCols: ec.TileCols,
		Naive:    ec.Naive,
	}
	perLayer = make([]float64, 0, 80)
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		s := n.shapes[i]
		if def.Kind != Conv {
			cur = s
			continue
		}
		k := cur.c * def.Size * def.Size
		cols := s.h * s.w
		cycles := model.GEMMRowCycles(cols, k, kc)
		waves := (def.Filters + ec.DPUs - 1) / ec.DPUs
		sec := float64(cycles) * float64(waves) / ec.FrequencyHz
		perLayer = append(perLayer, sec)
		total += sec
		cur = s
	}
	return total, perLayer, nil
}

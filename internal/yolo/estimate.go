package yolo

import (
	"fmt"

	"pimdnn/internal/dpu"
)

// EstimateConfig parameterizes the analytic latency estimate.
type EstimateConfig struct {
	Opt      dpu.OptLevel
	Tasklets int
	// DPUs is the system size available to the row-per-DPU mapping.
	DPUs int
	// TileCols matches the GEMM runner's tile width (tiled kernel).
	TileCols int
	// Naive selects the thesis-faithful kernel with MRAM-resident ctmp
	// (see gemm.RunnerConfig.Naive).
	Naive bool
	// FrequencyHz is the DPU clock.
	FrequencyHz float64
}

// DefaultEstimateConfig mirrors the thesis's measured configuration:
// threading + O3 on the 2,560-DPU system running its own (MRAM-bound)
// kernel (§4.3.1).
func DefaultEstimateConfig() EstimateConfig {
	return EstimateConfig{
		Opt:         dpu.O3,
		Tasklets:    11,
		DPUs:        dpu.SystemDPUs,
		TileCols:    256,
		Naive:       true,
		FrequencyHz: dpu.DefaultFrequencyHz,
	}
}

// EstimateSeconds computes the single-image inference latency of the
// network analytically, layer by layer, mirroring the charge structure of
// the simulated GEMM kernels exactly. It exists because the full 416×416
// YOLOv3 (~33 GMACs) is too large to simulate operation-by-operation; on
// networks small enough to run both ways the estimate tracks the
// simulator within a few percent (verified in tests).
//
// The thesis's measured best case is 65 s per image with a ~6 s max layer
// (§4.3.1); the Naive estimate reproduces that order for the full
// configuration.
func (n *Network) EstimateSeconds(ec EstimateConfig) (total float64, perLayer []float64, err error) {
	if ec.Tasklets < 1 || ec.Tasklets > dpu.MaxTasklets {
		return 0, nil, fmt.Errorf("yolo: estimate tasklets %d outside 1..%d", ec.Tasklets, dpu.MaxTasklets)
	}
	if ec.DPUs < 1 || ec.TileCols < 4 || ec.FrequencyHz <= 0 {
		return 0, nil, fmt.Errorf("yolo: bad estimate config %+v", ec)
	}
	perLayer = make([]float64, 0, 80)
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		s := n.shapes[i]
		if def.Kind != Conv {
			cur = s
			continue
		}
		k := cur.c * def.Size * def.Size
		cols := s.h * s.w
		var cycles uint64
		if ec.Naive {
			cycles = naiveLayerCycles(k, cols, ec)
		} else {
			cycles = tiledLayerCycles(k, cols, ec)
		}
		waves := (def.Filters + ec.DPUs - 1) / ec.DPUs
		sec := float64(cycles) * float64(waves) / ec.FrequencyHz
		perLayer = append(perLayer, sec)
		total += sec
		cur = s
	}
	return total, perLayer, nil
}

// dpuCycles applies the pipeline model to per-tasklet slot/DMA tallies.
func dpuCycles(slots, dma []uint64) uint64 {
	var busy, port, crit uint64
	for i := range slots {
		busy += slots[i]
		port += dma[i]
		if c := slots[i]*dpu.PipelineDepth + dma[i]; c > crit {
			crit = c
		}
	}
	cycles := busy
	if crit > cycles {
		cycles = crit
	}
	if port > cycles {
		cycles = port
	}
	return cycles
}

// tiledLayerCycles mirrors gemm.Runner.kernel's charges for one DPU
// computing one output row.
func tiledLayerCycles(k, cols int, ec EstimateConfig) uint64 {
	var (
		loadS  = dpu.OpSlots(dpu.OpLoad, ec.Opt)
		storeS = dpu.OpSlots(dpu.OpStore, ec.Opt)
		mulS   = dpu.OpSlots(dpu.OpMul16, ec.Opt)
		addS   = dpu.OpSlots(dpu.OpAddInt, ec.Opt)
		shiftS = dpu.OpSlots(dpu.OpShift, ec.Opt)
		brS    = dpu.OpSlots(dpu.OpBranch, ec.Opt)
	)
	T := ec.Tasklets
	slots := make([]uint64, T)
	dma := make([]uint64, T)

	// Every tasklet reads the params and stages APART (A-row loads and
	// multiplies); tasklet 0 additionally DMAs the A row from MRAM.
	setup := 3*loadS + uint64(k)*(loadS+mulS)
	for t := 0; t < T; t++ {
		slots[t] = setup
	}
	aBytes := (k*2 + 7) &^ 7
	for off := 0; off < aBytes; off += dpu.MaxDMATransfer {
		chunk := aBytes - off
		if chunk > dpu.MaxDMATransfer {
			chunk = dpu.MaxDMATransfer
		}
		dma[0] += dpu.DMACost(chunk)
	}

	tiles := (cols + ec.TileCols - 1) / ec.TileCols
	for tile := 0; tile < tiles; tile++ {
		t := tile % T
		c := cols - tile*ec.TileCols
		if c > ec.TileCols {
			c = ec.TileCols
		}
		chunkBytes := (c*2 + 7) &^ 7
		perElemPerK := 2*loadS + mulS + addS + storeS
		slots[t] += uint64(c) * storeS // ctmp zeroing
		slots[t] += uint64(k) * uint64(c) * perElemPerK
		slots[t] += uint64(c) * (shiftS + brS + storeS) // output clamp
		dma[t] += uint64(k)*dpu.DMACost(chunkBytes) + dpu.DMACost(chunkBytes)
	}
	return dpuCycles(slots, dma)
}

// naiveLayerCycles mirrors gemm.Runner.kernelNaive's charges.
func naiveLayerCycles(k, cols int, ec EstimateConfig) uint64 {
	var (
		loadS  = dpu.OpSlots(dpu.OpLoad, ec.Opt)
		mulS   = dpu.OpSlots(dpu.OpMul16, ec.Opt)
		addS   = dpu.OpSlots(dpu.OpAddInt, ec.Opt)
		shiftS = dpu.OpSlots(dpu.OpShift, ec.Opt)
		brS    = dpu.OpSlots(dpu.OpBranch, ec.Opt)
	)
	T := ec.Tasklets
	slots := make([]uint64, T)
	dma := make([]uint64, T)

	aBytes := (k*2 + 7) &^ 7
	for off := 0; off < aBytes; off += dpu.MaxDMATransfer {
		chunk := aBytes - off
		if chunk > dpu.MaxDMATransfer {
			chunk = dpu.MaxDMATransfer
		}
		dma[0] += dpu.DMACost(chunk)
	}
	for t := 0; t < T; t++ {
		nCols := (cols - t + T - 1) / T
		if nCols <= 0 {
			slots[t] += 3 * loadS
			continue
		}
		perK := loadS + mulS + // APART
			uint64(nCols)*(mulS+2*addS) // MAC + index
		slots[t] += 3*loadS + uint64(k)*perK
		dma[t] += uint64(k) * uint64(3*nCols) * dpu.DMACost(8) // ctmp RMW + B read
		// Output pass.
		slots[t] += uint64(nCols) * (shiftS + brS)
		dma[t] += uint64(2*nCols) * dpu.DMACost(8)
	}
	return dpuCycles(slots, dma)
}

package yolo

import (
	"fmt"
	"math/rand"

	"pimdnn/internal/fixed"
	"pimdnn/internal/gemm"
)

// ConvWeights holds one convolution's quantized parameters: W is the
// M×K GEMM operand (M = filters, K = inChannels*size*size), Bias is one
// Q10.5 value per filter.
type ConvWeights struct {
	W    []int16
	Bias []int16
}

type shape struct{ c, h, w int }

// Network is a built YOLOv3 with weights and inferred shapes.
type Network struct {
	Cfg     Config
	Defs    []LayerDef
	Weights []ConvWeights // indexed by layer; empty for non-conv layers
	shapes  []shape
	anchors []Anchor
}

// New builds the network graph, infers every layer's output shape, and
// generates seeded synthetic weights (std 1/sqrt(K), which keeps
// activations in range through the /32 GEMM rescale).
func New(cfg Config) (*Network, error) {
	defs, err := BuildLayers(cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{Cfg: cfg, Defs: defs, anchors: scaleAnchors(cfg)}
	n.Weights = make([]ConvWeights, len(defs))
	n.shapes = make([]shape, len(defs))

	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := shape{c: 3, h: cfg.InputSize, w: cfg.InputSize}
	for i, def := range defs {
		switch def.Kind {
		case Conv:
			k := cur.c * def.Size * def.Size
			outH := convOut(cur.h, def.Size, def.Stride)
			outW := convOut(cur.w, def.Size, def.Stride)
			n.Weights[i] = synthWeights(rng, def.Filters, k)
			cur = shape{c: def.Filters, h: outH, w: outW}
		case Shortcut:
			src := i + def.From
			if src < 0 || src >= i {
				return nil, fmt.Errorf("yolo: layer %d: bad shortcut source %d", i, src)
			}
			if n.shapes[src] != cur {
				return nil, fmt.Errorf("yolo: layer %d: shortcut shape mismatch %v vs %v", i, n.shapes[src], cur)
			}
		case Route:
			var c int
			var hw shape
			for _, ref := range def.Layers {
				src := ref
				if ref < 0 {
					src = i + ref
				}
				if src < 0 || src >= i {
					return nil, fmt.Errorf("yolo: layer %d: bad route source %d", i, ref)
				}
				s := n.shapes[src]
				if c == 0 {
					hw = s
				} else if s.h != hw.h || s.w != hw.w {
					return nil, fmt.Errorf("yolo: layer %d: route spatial mismatch", i)
				}
				c += s.c
			}
			cur = shape{c: c, h: hw.h, w: hw.w}
		case Upsample:
			cur = shape{c: cur.c, h: cur.h * def.Stride, w: cur.w * def.Stride}
		case Yolo:
			if cur.c != cfg.headFilters() {
				return nil, fmt.Errorf("yolo: layer %d: head depth %d, want %d", i, cur.c, cfg.headFilters())
			}
			// Yolo layers pass their input through unchanged.
		default:
			return nil, fmt.Errorf("yolo: layer %d: unknown kind %v", i, def.Kind)
		}
		n.shapes[i] = cur
	}
	return n, nil
}

// convOut is the darknet output-size rule with same-padding: pad = k/2.
func convOut(in, size, stride int) int {
	pad := size / 2
	return (in+2*pad-size)/stride + 1
}

func synthWeights(rng *rand.Rand, m, k int) ConvWeights {
	w := make([]int16, m*k)
	std := 1.0
	if k > 0 {
		std = 1.0 / sqrtFloat(float64(k))
	}
	for i := range w {
		w[i] = Quantize(rng.NormFloat64() * std)
	}
	bias := make([]int16, m)
	for i := range bias {
		bias[i] = Quantize(rng.NormFloat64() * 0.1)
	}
	return ConvWeights{W: w, Bias: bias}
}

func sqrtFloat(x float64) float64 {
	// Newton iterations; avoids importing math for one call site and is
	// exact enough for weight scaling.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func scaleAnchors(cfg Config) []Anchor {
	// Anchors are defined for 416×416; rescale to the configured input.
	s := float64(cfg.InputSize) / 416
	out := make([]Anchor, len(DefaultAnchors))
	for i, a := range DefaultAnchors {
		out[i] = Anchor{W: a.W * s, H: a.H * s}
	}
	return out
}

// Shape returns layer i's output (C, H, W).
func (n *Network) Shape(i int) (c, h, w int) {
	s := n.shapes[i]
	return s.c, s.h, s.w
}

// MACs returns the multiply-accumulate count of all convolutions (the
// TOPs input of the chapter 5 model).
func (n *Network) MACs() int64 {
	var total int64
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		if def.Kind == Conv {
			k := int64(cur.c) * int64(def.Size) * int64(def.Size)
			s := n.shapes[i]
			total += k * int64(s.c) * int64(s.h) * int64(s.w)
		}
		cur = n.shapes[i]
	}
	return total
}

// GEMMBounds returns the largest K and N any convolution needs, for
// sizing a gemm.Runner.
func (n *Network) GEMMBounds() (maxK, maxN int) {
	cur := shape{c: 3, h: n.Cfg.InputSize, w: n.Cfg.InputSize}
	for i, def := range n.Defs {
		if def.Kind == Conv {
			k := cur.c * def.Size * def.Size
			s := n.shapes[i]
			nn := s.h * s.w
			if k > maxK {
				maxK = k
			}
			if nn > maxN {
				maxN = nn
			}
		}
		cur = n.shapes[i]
	}
	return maxK, maxN
}

// MaxFilters returns the largest conv filter count — the DPU count the
// Fig 4.6 row-per-DPU mapping wants available.
func (n *Network) MaxFilters() int {
	m := 0
	for _, def := range n.Defs {
		if def.Kind == Conv && def.Filters > m {
			m = def.Filters
		}
	}
	return m
}

// applyBiasAct adds the per-filter bias (saturating) and applies the
// activation in place on the M×N GEMM output.
func applyBiasAct(c []int16, m, n int, bias []int16, act Activation) {
	for f := 0; f < m; f++ {
		b := bias[f]
		row := c[f*n : (f+1)*n]
		for j, v := range row {
			s := fixed.SatAdd16(v, b)
			if act == Leaky && s < 0 {
				// Quantized leaky ReLU: slope 1/8 via arithmetic shift.
				s = s >> 3
			}
			row[j] = s
		}
	}
}

// ConvHost computes one convolution entirely on the host (the reference
// the DPU path must match bit-for-bit).
func (n *Network) ConvHost(layer int, in *Tensor) (*Tensor, error) {
	def := n.Defs[layer]
	b, k, cols := Im2Col(in, def.Size, def.Stride)
	c, err := gemm.Reference(def.Filters, cols, k, 1, n.Weights[layer].W, b)
	if err != nil {
		return nil, fmt.Errorf("yolo: layer %d: %w", layer, err)
	}
	applyBiasAct(c, def.Filters, cols, n.Weights[layer].Bias, def.Activation)
	s := n.shapes[layer]
	return &Tensor{C: s.c, H: s.h, W: s.w, Data: c}, nil
}

// ConvDirect is a naive convolution used only by tests to validate the
// im2col+GEMM lowering.
func (n *Network) ConvDirect(layer int, in *Tensor) *Tensor {
	def := n.Defs[layer]
	s := n.shapes[layer]
	out := NewTensor(s.c, s.h, s.w)
	pad := def.Size / 2
	wts := n.Weights[layer]
	for f := 0; f < def.Filters; f++ {
		for oy := 0; oy < s.h; oy++ {
			for ox := 0; ox < s.w; ox++ {
				var acc int32
				for c := 0; c < in.C; c++ {
					for dy := 0; dy < def.Size; dy++ {
						for dx := 0; dx < def.Size; dx++ {
							iy := oy*def.Stride + dy - pad
							ix := ox*def.Stride + dx - pad
							if iy < 0 || iy >= in.H || ix < 0 || ix >= in.W {
								continue
							}
							wi := (c*def.Size+dy)*def.Size + dx
							acc += int32(wts.W[f*(in.C*def.Size*def.Size)+wi]) * int32(in.At(c, iy, ix))
						}
					}
				}
				v := fixed.GEMMOutputClamp(acc)
				v = fixed.SatAdd16(v, wts.Bias[f])
				if def.Activation == Leaky && v < 0 {
					v = v >> 3
				}
				out.Set(f, oy, ox, v)
			}
		}
	}
	return out
}

// shortcutAdd element-wise saturating-adds src into dst.
func shortcutAdd(dst, src *Tensor) {
	for i := range dst.Data {
		dst.Data[i] = fixed.SatAdd16(dst.Data[i], src.Data[i])
	}
}

// routeConcat concatenates tensors along channels.
func routeConcat(ts []*Tensor) *Tensor {
	c := 0
	for _, t := range ts {
		c += t.C
	}
	out := NewTensor(c, ts[0].H, ts[0].W)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	return out
}

// upsample2 nearest-neighbor upsamples by the integer factor.
func upsample(in *Tensor, factor int) *Tensor {
	out := NewTensor(in.C, in.H*factor, in.W*factor)
	for c := 0; c < in.C; c++ {
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				out.Set(c, y, x, in.At(c, y/factor, x/factor))
			}
		}
	}
	return out
}

package yolo

import (
	"fmt"

	"pimdnn/internal/gemm"
)

// ForwardBatch runs a batch of images with the image-per-DPU mapping the
// thesis's future work proposes (§6.1): every DPU holds one image's
// im2col matrix and computes entire convolution layers for it, emulating
// the eBNN multi-image-per-DPU method. The runner must have batch mode
// enabled with maxM >= the largest filter count (Network.MaxFilters).
//
// Results are bit-exact against per-image Forward.
func (n *Network) ForwardBatch(inputs []*Tensor, r *gemm.Runner) ([]*Result, *ForwardStats, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("yolo: empty batch")
	}
	for i, in := range inputs {
		if in.C != 3 || in.H != n.Cfg.InputSize || in.W != n.Cfg.InputSize {
			return nil, nil, fmt.Errorf("yolo: input %d is %dx%dx%d, want 3x%dx%d",
				i, in.C, in.H, in.W, n.Cfg.InputSize, n.Cfg.InputSize)
		}
	}
	if r == nil {
		return nil, nil, fmt.Errorf("yolo: ForwardBatch requires a batch-enabled runner")
	}

	nImg := len(inputs)
	outputs := make([][]*Tensor, nImg)
	for i := range outputs {
		outputs[i] = make([]*Tensor, len(n.Defs))
	}
	curs := make([]*Tensor, nImg)
	copy(curs, inputs)
	results := make([]*Result, nImg)
	for i := range results {
		results[i] = &Result{}
	}
	stats := &ForwardStats{}
	// Per-image im2col matrices reused across conv layers; MultiplyBatch
	// stages them into DPU MRAM before returning, so the next layer may
	// overwrite them.
	im2colBufs := make([][]int16, nImg)
	bs := make([][]int16, nImg)

	for li, def := range n.Defs {
		switch def.Kind {
		case Conv:
			var k, cols int
			for i := range curs {
				b, kk, cc := Im2ColInto(im2colBufs[i], curs[i], def.Size, def.Stride)
				bs[i], im2colBufs[i], k, cols = b, b, kk, cc
			}
			// MultiplyBatchEach delivers image i's product while later
			// images' gathers are still queued, so the bias/activation
			// pass overlaps the remaining transfers in pipelined mode.
			s := n.shapes[li]
			if r.MetricsOn() {
				r.SetScope(fmt.Sprintf("yolo_conv%03d", li))
			}
			if r.ResidencyOn() {
				r.SetWeightLayer(li)
			}
			reqSp := r.TraceSpan()
			if reqSp != nil {
				lsp := reqSp.StartChild(fmt.Sprintf("yolo_conv%03d", li))
				lsp.SetAttr("layer", int64(li))
				r.SetTraceSpan(lsp)
			}
			st, err := r.MultiplyBatchEach(def.Filters, cols, k, 1, n.Weights[li].W, bs,
				func(i int, c []int16) {
					applyBiasAct(c, def.Filters, cols, n.Weights[li].Bias, def.Activation)
					curs[i] = &Tensor{C: s.c, H: s.h, W: s.w, Data: c}
				})
			if reqSp != nil {
				r.TraceSpan().End()
				r.SetTraceSpan(reqSp)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("yolo: layer %d: %w", li, err)
			}
			ls := LayerStat{
				Layer: li, Kind: Conv, DPUsUsed: st.DPUsUsed,
				Cycles: st.Cycles, Seconds: st.Seconds,
				Tasklets: st.Tasklets,
			}
			if mp, ok := r.LastMapping(); ok {
				ls.PredictedSeconds = mp.PredictedSeconds
			}
			stats.Layers = append(stats.Layers, ls)
			stats.Cycles += st.Cycles
			stats.Seconds += st.Seconds
		case Shortcut:
			for i := range curs {
				out := curs[i].Clone()
				shortcutAdd(out, outputs[i][li+def.From])
				curs[i] = out
			}
		case Route:
			for i := range curs {
				srcs := make([]*Tensor, len(def.Layers))
				for j, ref := range def.Layers {
					src := ref
					if ref < 0 {
						src = li + ref
					}
					srcs[j] = outputs[i][src]
				}
				curs[i] = routeConcat(srcs)
			}
		case Upsample:
			for i := range curs {
				curs[i] = upsample(curs[i], def.Stride)
			}
		case Yolo:
			for i := range curs {
				results[i].YoloOutputs = append(results[i].YoloOutputs, curs[i])
				results[i].Detections = append(results[i].Detections,
					n.decodeScale(curs[i], def.Mask)...)
			}
		}
		for i := range curs {
			outputs[i][li] = curs[i]
		}
	}
	for i := range results {
		results[i].Detections = NMS(results[i].Detections, 0.45)
	}
	return results, stats, nil
}

// SizePoint is one sample of the network-size study.
type SizePoint struct {
	InputSize int
	WidthDiv  int
	MACs      int64
	// Seconds is the estimated single-image latency on the full system.
	Seconds float64
	// SecondsPerMAC normalizes latency by work — the efficiency curve
	// that shows where the UPMEM mapping stops paying off.
	SecondsPerMAC float64
	// MeanDPUs is the average number of DPUs the row-per-DPU mapping
	// keeps busy (the mean conv filter count); Utilization divides it
	// by the system size. Small networks leave most of the 2,560 DPUs
	// idle — the §6.1 "where UPMEM starts losing performance" answer.
	MeanDPUs    float64
	Utilization float64
}

// SizeSweep answers the thesis's future-work question "for what network
// size does UPMEM's system start losing performance" (§6.1): it estimates
// the latency of the 75-conv YOLOv3 graph across input resolutions at a
// fixed width divisor.
func SizeSweep(sizes []int, widthDiv int, ec EstimateConfig) ([]SizePoint, error) {
	out := make([]SizePoint, 0, len(sizes))
	for _, s := range sizes {
		cfg := Config{InputSize: s, Classes: 80, WidthDiv: widthDiv, Seed: 1}
		net, err := New(cfg)
		if err != nil {
			return nil, err
		}
		total, _, err := net.EstimateSeconds(ec)
		if err != nil {
			return nil, err
		}
		macs := net.MACs()
		var filters, convs int
		for _, def := range net.Defs {
			if def.Kind == Conv {
				filters += def.Filters
				convs++
			}
		}
		meanDPUs := float64(filters) / float64(convs)
		used := meanDPUs
		if used > float64(ec.DPUs) {
			used = float64(ec.DPUs)
		}
		out = append(out, SizePoint{
			InputSize:     s,
			WidthDiv:      widthDiv,
			MACs:          macs,
			Seconds:       total,
			SecondsPerMAC: total / float64(macs),
			MeanDPUs:      meanDPUs,
			Utilization:   used / float64(ec.DPUs),
		})
	}
	return out, nil
}

//go:build !race

package yolo

// raceDetectorEnabled reports whether this test binary was built with
// -race, which perturbs testing.AllocsPerRun by an occasional
// detector-internal allocation.
const raceDetectorEnabled = false

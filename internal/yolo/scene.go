package yolo

import "math/rand"

// SyntheticScene renders a deterministic test image: a smooth gradient
// background with a few high-contrast rectangles, standing in for the
// thesis's 416×416 example photograph (§4.2.2 — the reference dog image
// is not vendored; the network input only needs realistic dynamic range).
func SyntheticScene(size int, seed int64) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := NewTensor(3, size, size)
	// Gradient background per channel.
	for c := 0; c < 3; c++ {
		phase := rng.Float64()
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				v := 0.25 + 0.5*(phase*float64(x)+(1-phase)*float64(y))/float64(size)
				t.Set(c, y, x, Quantize(v))
			}
		}
	}
	// Planted rectangles with distinct per-channel intensity.
	for i := 0; i < 4; i++ {
		w := size/8 + rng.Intn(size/4)
		h := size/8 + rng.Intn(size/4)
		x0 := rng.Intn(size - w)
		y0 := rng.Intn(size - h)
		var col [3]float64
		for c := range col {
			col[c] = rng.Float64()
		}
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				for c := 0; c < 3; c++ {
					t.Set(c, y, x, Quantize(col[c]))
				}
			}
		}
	}
	return t
}

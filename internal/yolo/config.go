package yolo

import "fmt"

// LayerKind enumerates the YOLOv3 layer types.
type LayerKind int

// Layer kinds.
const (
	Conv LayerKind = iota + 1
	Shortcut
	Route
	Upsample
	Yolo
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Shortcut:
		return "shortcut"
	case Route:
		return "route"
	case Upsample:
		return "upsample"
	case Yolo:
		return "yolo"
	default:
		return "layer?"
	}
}

// Activation selects the post-convolution nonlinearity.
type Activation int

// Activations: Leaky is the darknet leaky ReLU (quantized here as x>>3
// for negative inputs); Linear is identity (detection heads).
const (
	Leaky Activation = iota + 1
	Linear
)

// LayerDef describes one layer of the network graph.
type LayerDef struct {
	Kind       LayerKind
	Filters    int        // Conv: output channels
	Size       int        // Conv: kernel edge (1 or 3)
	Stride     int        // Conv: stride; Upsample: factor
	Activation Activation // Conv only
	From       int        // Shortcut: relative source (e.g. -3)
	Layers     []int      // Route: relative (<0) or absolute source indices
	Mask       []int      // Yolo: anchor indices used at this scale
}

// Anchor is a prior box size in input pixels.
type Anchor struct{ W, H float64 }

// DefaultAnchors are the standard YOLOv3 anchors (416×416 training).
var DefaultAnchors = []Anchor{
	{10, 13}, {16, 30}, {33, 23},
	{30, 61}, {62, 45}, {59, 119},
	{116, 90}, {156, 198}, {373, 326},
}

// Config parameterizes the network build.
type Config struct {
	// InputSize is the square input resolution; must be a multiple of 32
	// (the network downsamples 5 times). The thesis uses 416.
	InputSize int
	// Classes is the number of object classes (COCO: 80).
	Classes int
	// WidthDiv divides every channel width (minimum 2), shrinking the
	// network for simulation while preserving the 75-conv-layer graph.
	// 1 reproduces the full YOLOv3.
	WidthDiv int
	// Seed drives synthetic weight generation.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.InputSize < 32 || c.InputSize%32 != 0 {
		return fmt.Errorf("yolo: input size %d must be a positive multiple of 32", c.InputSize)
	}
	if c.Classes < 1 {
		return fmt.Errorf("yolo: classes %d < 1", c.Classes)
	}
	if c.WidthDiv < 1 {
		return fmt.Errorf("yolo: width divisor %d < 1", c.WidthDiv)
	}
	return nil
}

// FullConfig is the thesis's network: YOLOv3 at 416×416 with 80 classes.
func FullConfig() Config {
	return Config{InputSize: 416, Classes: 80, WidthDiv: 1, Seed: 1}
}

// LiteConfig is a reduced network for simulation: the same 75-conv graph
// at a smaller resolution and width.
func LiteConfig() Config {
	return Config{InputSize: 96, Classes: 4, WidthDiv: 16, Seed: 1}
}

// width applies the divisor with a floor of 2 channels.
func (c Config) width(ch int) int {
	w := ch / c.WidthDiv
	if w < 2 {
		w = 2
	}
	return w
}

// headFilters is the per-scale detection tensor depth: 3 anchors ×
// (4 box + 1 objectness + classes).
func (c Config) headFilters() int {
	return 3 * (5 + c.Classes)
}

// BuildLayers emits the standard yolov3.cfg layer sequence (107 layers,
// of which 75 are convolutional).
func BuildLayers(cfg Config) ([]LayerDef, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var ls []LayerDef
	conv := func(filters, size, stride int, act Activation) {
		ls = append(ls, LayerDef{Kind: Conv, Filters: filters, Size: size, Stride: stride, Activation: act})
	}
	residual := func(mid, out int, repeats int) {
		for i := 0; i < repeats; i++ {
			conv(cfg.width(mid), 1, 1, Leaky)
			conv(cfg.width(out), 3, 1, Leaky)
			ls = append(ls, LayerDef{Kind: Shortcut, From: -3})
		}
	}

	// Darknet-53 backbone.
	conv(cfg.width(32), 3, 1, Leaky)
	conv(cfg.width(64), 3, 2, Leaky)
	residual(32, 64, 1)
	conv(cfg.width(128), 3, 2, Leaky)
	residual(64, 128, 2)
	conv(cfg.width(256), 3, 2, Leaky)
	residual(128, 256, 8) // ends at layer 36
	conv(cfg.width(512), 3, 2, Leaky)
	residual(256, 512, 8) // ends at layer 61
	conv(cfg.width(1024), 3, 2, Leaky)
	residual(512, 1024, 4)

	// Scale 1 head (stride 32).
	conv(cfg.width(512), 1, 1, Leaky)
	conv(cfg.width(1024), 3, 1, Leaky)
	conv(cfg.width(512), 1, 1, Leaky)
	conv(cfg.width(1024), 3, 1, Leaky)
	conv(cfg.width(512), 1, 1, Leaky)
	conv(cfg.width(1024), 3, 1, Leaky)
	conv(cfg.headFilters(), 1, 1, Linear)
	ls = append(ls, LayerDef{Kind: Yolo, Mask: []int{6, 7, 8}})

	// Scale 2 head (stride 16).
	ls = append(ls, LayerDef{Kind: Route, Layers: []int{-4}})
	conv(cfg.width(256), 1, 1, Leaky)
	ls = append(ls, LayerDef{Kind: Upsample, Stride: 2})
	ls = append(ls, LayerDef{Kind: Route, Layers: []int{-1, 61}})
	conv(cfg.width(256), 1, 1, Leaky)
	conv(cfg.width(512), 3, 1, Leaky)
	conv(cfg.width(256), 1, 1, Leaky)
	conv(cfg.width(512), 3, 1, Leaky)
	conv(cfg.width(256), 1, 1, Leaky)
	conv(cfg.width(512), 3, 1, Leaky)
	conv(cfg.headFilters(), 1, 1, Linear)
	ls = append(ls, LayerDef{Kind: Yolo, Mask: []int{3, 4, 5}})

	// Scale 3 head (stride 8).
	ls = append(ls, LayerDef{Kind: Route, Layers: []int{-4}})
	conv(cfg.width(128), 1, 1, Leaky)
	ls = append(ls, LayerDef{Kind: Upsample, Stride: 2})
	ls = append(ls, LayerDef{Kind: Route, Layers: []int{-1, 36}})
	conv(cfg.width(128), 1, 1, Leaky)
	conv(cfg.width(256), 3, 1, Leaky)
	conv(cfg.width(128), 1, 1, Leaky)
	conv(cfg.width(256), 3, 1, Leaky)
	conv(cfg.width(128), 1, 1, Leaky)
	conv(cfg.width(256), 3, 1, Leaky)
	conv(cfg.headFilters(), 1, 1, Linear)
	ls = append(ls, LayerDef{Kind: Yolo, Mask: []int{0, 1, 2}})

	return ls, nil
}

// CountConvLayers returns the number of convolutional layers in a layer
// list (75 for the standard graph).
func CountConvLayers(ls []LayerDef) int {
	n := 0
	for _, l := range ls {
		if l.Kind == Conv {
			n++
		}
	}
	return n
}

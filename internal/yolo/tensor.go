// Package yolo implements a quantized YOLOv3 (Darknet-53 backbone +
// three-scale detection head) whose convolutions lower to the Algorithm 2
// fixed-point GEMM and run on the simulated UPMEM system (§4.2).
//
// Following the thesis, only the GEMM is delegated to the DPUs; im2col,
// bias/activation, shortcut/route/upsample layers and the detection
// decode stay on the host. Activations and weights are int16 in Q10.5
// (value × 32), the scale at which Algorithm 2's /32 output rescale keeps
// products in format.
//
// The network structure is the standard yolov3.cfg (75 convolutional
// layers); the WidthDiv parameter shrinks input resolution and channel
// widths so experiments fit the simulator, while preserving the layer
// graph. Weights are synthetic (seeded): the thesis's evaluation of this
// network is a latency/mapping study, and correctness is established by
// bit-exact agreement between the host reference and the DPU path plus
// unit tests on every layer type.
package yolo

import "pimdnn/internal/tensor"

// QShift and QOne re-export the shared fixed-point scale.
const (
	QShift = tensor.QShift
	QOne   = tensor.QOne
)

// Tensor is the shared quantized activation tensor.
type Tensor = tensor.Tensor

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor { return tensor.New(c, h, w) }

// Quantize converts a float64 value into Q10.5 with saturation.
func Quantize(x float64) int16 { return tensor.Quantize(x) }

// QuantizeTensor builds a tensor from float64 data in (C, H, W) order.
func QuantizeTensor(c, h, w int, data []float64) (*Tensor, error) {
	return tensor.QuantizeTensor(c, h, w, data)
}

// Im2Col lowers the convolution input into the B matrix of Algorithm 2
// using darknet's same-padding rule (pad = size/2).
func Im2Col(in *Tensor, size, stride int) (b []int16, k, n int) {
	return tensor.Im2Col(in, size, stride, size/2)
}

// Im2ColInto is Im2Col reusing buf's backing array when large enough, so
// the per-layer forward loop keeps one patch matrix across conv layers.
func Im2ColInto(buf []int16, in *Tensor, size, stride int) (b []int16, k, n int) {
	return tensor.Im2ColInto(buf, in, size, stride, size/2)
}

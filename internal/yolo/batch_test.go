package yolo

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

func newBatchRunner(t *testing.T, n *Network, nDPU, tasklets int, mode host.PipelineMode) *gemm.Runner {
	t.Helper()
	sys, err := host.NewSystem(nDPU, host.DefaultConfig(dpu.O3))
	if err != nil {
		t.Fatal(err)
	}
	maxK, maxN := n.GEMMBounds()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: tasklets, TileCols: 64, Pipeline: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnableBatch(n.MaxFilters()); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestForwardBatchMatchesForward: the image-per-DPU batch path must be
// bit-exact against the per-image row-per-DPU path for every image.
func TestForwardBatchMatchesForward(t *testing.T) {
	testForwardBatchMatchesForward(t, host.PipelineOff)
}

// TestForwardBatchPipelinedMatchesForward: routing the batch GEMMs
// through the asynchronous queue (overlapped result drain) must not
// change a single output element or the simulated layer times.
func TestForwardBatchPipelinedMatchesForward(t *testing.T) {
	testForwardBatchMatchesForward(t, host.PipelineOn)
}

func testForwardBatchMatchesForward(t *testing.T, mode host.PipelineMode) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []*Tensor{
		SyntheticScene(32, 1),
		SyntheticScene(32, 2),
		SyntheticScene(32, 3),
	}
	r := newBatchRunner(t, n, 4, 8, mode)
	batchRes, stats, err := n.ForwardBatch(inputs, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchRes) != 3 {
		t.Fatalf("results = %d", len(batchRes))
	}
	if len(stats.Layers) != 75 || stats.Seconds <= 0 {
		t.Errorf("stats: %d layers, %.4g s", len(stats.Layers), stats.Seconds)
	}
	for i, in := range inputs {
		want, _, err := n.Forward(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		for s := range want.YoloOutputs {
			w, g := want.YoloOutputs[s], batchRes[i].YoloOutputs[s]
			for j := range w.Data {
				if w.Data[j] != g.Data[j] {
					t.Fatalf("image %d scale %d element %d: batch %d, host %d",
						i, s, j, g.Data[j], w.Data[j])
				}
			}
		}
		if len(want.Detections) != len(batchRes[i].Detections) {
			t.Errorf("image %d: detections %d vs %d", i, len(batchRes[i].Detections), len(want.Detections))
		}
	}
}

func TestForwardBatchValidation(t *testing.T) {
	n, _ := New(tinyConfig())
	r := newBatchRunner(t, n, 2, 4, host.PipelineOff)
	if _, _, err := n.ForwardBatch(nil, r); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := n.ForwardBatch([]*Tensor{NewTensor(3, 64, 64)}, r); err == nil {
		t.Error("wrong-size input accepted")
	}
	if _, _, err := n.ForwardBatch([]*Tensor{SyntheticScene(32, 1)}, nil); err == nil {
		t.Error("nil runner accepted")
	}
}

// TestMappingComparison quantifies the §6.1 future-work comparison on a
// full batch: when the batch fills the system, image-per-DPU beats
// serial row-per-DPU in total time for this narrow network.
func TestMappingComparison(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	const nDPU = 4
	inputs := make([]*Tensor, nDPU)
	for i := range inputs {
		inputs[i] = SyntheticScene(32, int64(i+10))
	}

	// Row-per-DPU, images serialized.
	sys, _ := host.NewSystem(nDPU, host.DefaultConfig(dpu.O3))
	maxK, maxN := n.GEMMBounds()
	rowRunner, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 8, TileCols: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rowTotal float64
	for _, in := range inputs {
		_, st, err := n.Forward(in, rowRunner)
		if err != nil {
			t.Fatal(err)
		}
		rowTotal += st.Seconds
	}

	// Image-per-DPU, whole batch at once.
	batchRunner := newBatchRunner(t, n, nDPU, 8, host.PipelineOff)
	_, stBatch, err := n.ForwardBatch(inputs, batchRunner)
	if err != nil {
		t.Fatal(err)
	}

	if stBatch.Seconds >= rowTotal {
		t.Errorf("image-per-DPU batch (%.4g s) should beat serialized row mapping (%.4g s) on a tiny network",
			stBatch.Seconds, rowTotal)
	}
	t.Logf("4-image batch on 4 DPUs: row-per-DPU %.4g s, image-per-DPU %.4g s (%.1fx)",
		rowTotal, stBatch.Seconds, rowTotal/stBatch.Seconds)
}

// TestSizeSweep answers the §6.1 scaling question: latency grows with
// input size and the per-MAC efficiency reveals where small networks
// waste the system.
func TestSizeSweep(t *testing.T) {
	ec := DefaultEstimateConfig()
	pts, err := SizeSweep([]int{96, 160, 256, 416}, 1, ec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds <= pts[i-1].Seconds {
			t.Errorf("latency not increasing: %v", pts)
		}
		if pts[i].MACs <= pts[i-1].MACs {
			t.Errorf("MACs not increasing: %v", pts)
		}
	}
	// Efficiency: tiny inputs underutilize the system (fewer columns
	// per DPU wave), so seconds-per-MAC should not improve as the
	// network shrinks dramatically.
	if pts[0].SecondsPerMAC < pts[len(pts)-1].SecondsPerMAC*0.5 {
		t.Errorf("small network looks anomalously efficient: %+v", pts)
	}
	if _, err := SizeSweep([]int{100}, 1, ec); err == nil {
		t.Error("invalid size accepted")
	}
}

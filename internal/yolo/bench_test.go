package yolo

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

// BenchmarkIm2Col measures the convolution lowering.
func BenchmarkIm2Col(b *testing.B) {
	in := SyntheticScene(96, 1)
	b.SetBytes(int64(in.Len() * 2))
	var sink []int16
	for i := 0; i < b.N; i++ {
		sink, _, _ = Im2Col(in, 3, 1)
	}
	_ = sink
}

// BenchmarkForwardHost measures the host reference forward pass on the
// tiny 75-conv network.
func BenchmarkForwardHost(b *testing.B) {
	n, err := New(tinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	in := SyntheticScene(32, 2)
	for i := 0; i < b.N; i++ {
		if _, _, err := n.Forward(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardDPU measures the DPU-delegated forward pass (tiled
// kernel) and reports modeled DPU time.
func BenchmarkForwardDPU(b *testing.B) {
	n, err := New(tinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	in := SyntheticScene(32, 2)
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	maxK, maxN := n.GEMMBounds()
	r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: 11, TileCols: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		_, st, err := n.Forward(in, r)
		if err != nil {
			b.Fatal(err)
		}
		sec = st.Seconds
	}
	b.ReportMetric(sec, "sim-seconds")
}

// BenchmarkEstimateFull measures the analytic full-size estimator.
func BenchmarkEstimateFull(b *testing.B) {
	n, err := New(FullConfig())
	if err != nil {
		b.Fatal(err)
	}
	ec := DefaultEstimateConfig()
	var total float64
	for i := 0; i < b.N; i++ {
		total, _, err = n.EstimateSeconds(ec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(total, "est-seconds")
}

// BenchmarkDecode measures the detection head decode + NMS on a dense
// tensor.
func BenchmarkDecode(b *testing.B) {
	cfg := Config{InputSize: 416, Classes: 80, WidthDiv: 1, Seed: 1}
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	t := NewTensor(cfg.headFilters(), 13, 13)
	for i := range t.Data {
		t.Data[i] = int16(i%128 - 64)
	}
	var sink []Detection
	for i := 0; i < b.N; i++ {
		sink = n.decodeScale(t, []int{6, 7, 8})
	}
	_ = sink
}

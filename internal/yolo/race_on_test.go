//go:build race

package yolo

const raceDetectorEnabled = true

package yolo

import (
	"testing"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
)

// TestNaiveEstimateAgreesWithSimulation: the analytic estimator must also
// track the simulator in the thesis-faithful (naive) kernel mode.
func TestNaiveEstimateAgreesWithSimulation(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 9)
	const tasklets = 8
	sys, _ := host.NewSystem(4, host.DefaultConfig(dpu.O3))
	maxK, maxN := n.GEMMBounds()
	runner, err := gemm.NewRunner(sys, gemm.RunnerConfig{
		MaxK: maxK, MaxN: maxN, Tasklets: tasklets, Naive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := n.Forward(in, runner)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := n.EstimateSeconds(EstimateConfig{
		Opt: dpu.O3, Tasklets: tasklets, DPUs: 4, TileCols: 256, Naive: true,
		FrequencyHz: dpu.DefaultFrequencyHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := est / stats.Seconds
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("naive estimate %.4gs vs simulated %.4gs (ratio %.2f)", est, stats.Seconds, ratio)
	}
	t.Logf("naive estimate %.4gs, simulated %.4gs, ratio %.3f", est, stats.Seconds, ratio)
}

// TestFig47bOptimizationMatrix reproduces Fig 4.7(b): YOLOv3 latency for
// the four combinations of threading × compiler optimization. The worst
// case is no-threading + O0; the best is threading + O3.
func TestFig47bOptimizationMatrix(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := SyntheticScene(32, 10)
	run := func(opt dpu.OptLevel, tasklets int) float64 {
		sys, _ := host.NewSystem(2, host.DefaultConfig(opt))
		maxK, maxN := n.GEMMBounds()
		runner, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: tasklets, Naive: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := n.Forward(in, runner)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Seconds
	}
	var (
		o0noThread = run(dpu.O0, 1)
		o3noThread = run(dpu.O3, 1)
		o0thread   = run(dpu.O0, 11)
		o3thread   = run(dpu.O3, 11)
	)
	t.Logf("Fig 4.7b: O0/1t=%.4g O3/1t=%.4g O0/11t=%.4g O3/11t=%.4g s",
		o0noThread, o3noThread, o0thread, o3thread)
	if !(o0noThread > o3noThread && o0noThread > o0thread) {
		t.Error("O0 + no threading must be the worst configuration")
	}
	if !(o3thread < o3noThread && o3thread < o0thread) {
		t.Error("O3 + threading must be the best configuration")
	}
	// The thesis observes both levers matter, with threading the bigger
	// jump; in our kernel the two gains come out comparable (the O0->O3
	// collapse of the 16-bit multiply subroutine is a large part of the
	// compute). Require both to be substantial and of the same order.
	threadGain := o0noThread / o0thread
	optGain := o0noThread / o3noThread
	if threadGain < 2 || optGain < 2 {
		t.Errorf("gains too small: threading %.2f, optimization %.2f", threadGain, optGain)
	}
	if threadGain < optGain*0.5 {
		t.Errorf("threading gain %.2f not comparable to optimization gain %.2f", threadGain, optGain)
	}
}

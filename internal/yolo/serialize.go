package yolo

import (
	"fmt"
	"io"

	"pimdnn/internal/tensor"
)

// SaveWeights serializes the network's parameters (all 75 convolutions,
// positionally) so a tuned or externally imported weight set can be
// reloaded into the same graph.
func (n *Network) SaveWeights(w io.Writer) error {
	layers := make([]tensor.LayerWeights, len(n.Weights))
	for i, cw := range n.Weights {
		layers[i] = tensor.LayerWeights{W: cw.W, Bias: cw.Bias}
	}
	return tensor.WriteWeights(w, layers)
}

// LoadWeights replaces the network's parameters with a saved set,
// validating every layer's dimensions against the built graph.
func (n *Network) LoadWeights(r io.Reader) error {
	layers, err := tensor.ReadWeights(r)
	if err != nil {
		return fmt.Errorf("yolo: %w", err)
	}
	if len(layers) != len(n.Weights) {
		return fmt.Errorf("yolo: weight file has %d layers, graph has %d", len(layers), len(n.Weights))
	}
	for i := range layers {
		if len(layers[i].W) != len(n.Weights[i].W) || len(layers[i].Bias) != len(n.Weights[i].Bias) {
			return fmt.Errorf("yolo: layer %d dimensions (%d, %d) do not match graph (%d, %d)",
				i, len(layers[i].W), len(layers[i].Bias), len(n.Weights[i].W), len(n.Weights[i].Bias))
		}
	}
	for i := range layers {
		n.Weights[i] = ConvWeights{W: layers[i].W, Bias: layers[i].Bias}
	}
	return nil
}

// Regression guard for the tasklet-scaling wall-clock anomaly: host-side
// simulation overhead must stay roughly flat as the tasklet count grows.
// BENCH_pr5 recorded BenchmarkFig47aTaskletSpeedup/YOLO *slowing down*
// 2.4ms→5.1ms from 1 to 16 tasklets — pure simulator overhead (per-
// tasklet launch bookkeeping and per-op charging), since the modeled
// cycles shrink with more tasklets. With block accounting and reusable
// launch stats the measured ratio is ~1.6x; the bound below is generous
// for timer noise on loaded CI machines but far below the 2.1x
// regression it guards against.
package pimdnn_test

import (
	"testing"
	"time"

	"pimdnn/internal/dpu"
	"pimdnn/internal/gemm"
	"pimdnn/internal/host"
	"pimdnn/internal/yolo"
)

func TestTaskletScalingHostOverheadFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	net, err := yolo.New(yolo.Config{InputSize: 32, Classes: 1, WidthDiv: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	img := yolo.SyntheticScene(32, 5)
	maxK, maxN := net.GEMMBounds()

	mkRunner := func(tasklets int) (*host.System, *gemm.Runner) {
		sys, err := host.NewSystem(2, host.DefaultConfig(dpu.O3))
		if err != nil {
			t.Fatal(err)
		}
		r, err := gemm.NewRunner(sys, gemm.RunnerConfig{
			MaxK: maxK, MaxN: maxN, Tasklets: tasklets, TileCols: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Warm the runner's reusable staging buffers.
		if _, _, err := net.Forward(img, r); err != nil {
			t.Fatal(err)
		}
		return sys, r
	}
	sys1, r1 := mkRunner(1)
	defer sys1.Close()
	sys8, r8 := mkRunner(8)
	defer sys8.Close()
	sys16, r16 := mkRunner(16)
	defer sys16.Close()

	// Time batches of 8 forwards, alternating the two runners so machine
	// load drifts hit both sides, and keep the minimum batch per side —
	// the trial least disturbed by scheduler noise.
	batch := func(r *gemm.Runner) time.Duration {
		start := time.Now()
		for i := 0; i < 8; i++ {
			if _, _, err := net.Forward(img, r); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	const maxDur = time.Duration(1<<63 - 1)
	t1, t8, t16 := maxDur, maxDur, maxDur
	for trial := 0; trial < 4; trial++ {
		if d := batch(r1); d < t1 {
			t1 = d
		}
		if d := batch(r8); d < t8 {
			t8 = d
		}
		if d := batch(r16); d < t16 {
			t16 = d
		}
	}
	ratio := float64(t16) / float64(t1)
	t.Logf("1 tasklet: %v, 8 tasklets: %v, 16 tasklets: %v per 8 forwards (1->16 ratio %.2fx)", t1, t8, t16, ratio)
	if ratio > 1.9 {
		t.Errorf("16-tasklet forward is %.2fx the 1-tasklet wall clock (want <= 1.9x): per-tasklet host overhead regressed", ratio)
	}
	// Guard the 8->16 step specifically: BENCH_pr6 recorded the YOLO
	// forward slowing 1.00ms -> 1.23ms from 8 to 16 tasklets (~1.2x)
	// from per-tasklet launch bookkeeping alone; with touched-op mix
	// merging and the idle-tasklet kernel fast path it is ~1.1x. The
	// bound leaves headroom for timer noise, not for an O(tasklets)
	// host cost per launch.
	if r := float64(t16) / float64(t8); r > 1.5 {
		t.Errorf("16-tasklet forward is %.2fx the 8-tasklet wall clock (want <= 1.5x): per-tasklet host overhead regressed", r)
	}
}

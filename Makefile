# Build/test entry points. `make ci` is the full gate: vet, build, tests,
# a race pass over the packages with cross-goroutine state (the host
# runtime's worker pool, sharded transfers, and async command queue, the
# trace profile, the metrics registry, the execution engine, the
# softfloat slice kernels and compiled ISA dispatch shared across
# concurrently launched DPUs, and the gemm/ebnn/yolo and alexnet/resnet
# runners that drive parallel and pipelined launches, including the
# fault-injection recovery paths, plus the upmem-top renderer and the
# upmem-serve batching/backpressure server), and
# a check that this PR's benchmark trajectory record exists (see
# DESIGN.md, "Simulator performance"). bench.sh additionally fails the
# record step if any hot-path benchmark's allocs/op grew over the
# baseline.

GO ?= go

# The perf trajectory record this PR must ship (regenerate: make bench).
BENCH_RECORD ?= BENCH_pr10.json

.PHONY: all build vet test race bench bench-record profile ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dpu ./internal/softfloat ./internal/isa ./internal/host ./internal/trace ./internal/metrics ./internal/exec ./internal/gemm ./internal/ebnn ./internal/yolo ./internal/alexnet ./internal/resnet ./internal/plan ./cmd/upmem-top ./cmd/upmem-serve

# Regenerate $(BENCH_RECORD) and diff it against the previous PR's
# record (see DESIGN.md, "Simulator performance").
bench:
	scripts/bench.sh

bench-record:
	@test -f $(BENCH_RECORD) || { echo "FAIL: $(BENCH_RECORD) missing — run 'make bench' and commit it"; exit 1; }

# CPU-profile the simulator hot path and print the top cumulative
# functions (cpu.prof is left behind for `go tool pprof -http`).
profile:
	$(GO) test -run xxx -bench BenchmarkSimulatorWallClock -benchtime 500x -cpuprofile cpu.prof .
	$(GO) tool pprof -top -cum -nodecount=10 pimdnn.test cpu.prof

ci: vet build test race bench-record

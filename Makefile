# Build/test entry points. `make ci` is the full gate: vet, build, tests,
# and a race pass over the packages with cross-goroutine state (the host
# runtime's worker pool, sharded transfers, and async command queue, the
# trace profile, and the gemm/ebnn/yolo runners that drive parallel and
# pipelined launches, including the fault-injection recovery paths).

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dpu ./internal/host ./internal/trace ./internal/gemm ./internal/ebnn ./internal/yolo

# Regenerate BENCH_pr2.json and diff it against BENCH_baseline.json
# (see DESIGN.md, "Simulator performance").
bench:
	scripts/bench.sh

ci: vet build test race

# Build/test entry points. `make ci` is the full gate: vet, build, tests,
# a race pass over the packages with cross-goroutine state (the host
# runtime's worker pool, sharded transfers, and async command queue, the
# trace profile, the metrics registry, the execution engine, and the
# gemm/ebnn/yolo and alexnet/resnet runners that drive parallel and
# pipelined launches, including the fault-injection recovery paths), and
# a check that this PR's benchmark trajectory record exists (see
# DESIGN.md, "Simulator performance"). bench.sh additionally fails the
# record step if any hot-path benchmark's allocs/op grew over the
# baseline.

GO ?= go

# The perf trajectory record this PR must ship (regenerate: make bench).
BENCH_RECORD ?= BENCH_pr5.json

.PHONY: all build vet test race bench bench-record ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/dpu ./internal/host ./internal/trace ./internal/metrics ./internal/exec ./internal/gemm ./internal/ebnn ./internal/yolo ./internal/alexnet ./internal/resnet

# Regenerate $(BENCH_RECORD) and diff it against the previous PR's
# record (see DESIGN.md, "Simulator performance").
bench:
	scripts/bench.sh

bench-record:
	@test -f $(BENCH_RECORD) || { echo "FAIL: $(BENCH_RECORD) missing — run 'make bench' and commit it"; exit 1; }

ci: vet build test race bench-record

# Build/test entry points. `make ci` is the full gate: vet, build, tests,
# and a race pass over the packages with cross-goroutine state (the host
# runtime's worker pool + sharded transfers, the trace profile, and the
# gemm runner that drives parallel launches).

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/host ./internal/trace ./internal/gemm

# Regenerate BENCH_baseline.json (see DESIGN.md, "Simulator performance").
bench:
	scripts/bench.sh

ci: vet build test race
